"""Parallel sliced image computation and the batch sweep runner.

Walkthrough of the scaling layers added on top of the paper's
algorithms:

1. the *sliced execution strategy* — one big transition-relation
   contraction decomposed into independent cofactor subproblems,
   optionally fanned out over a process pool (identical results,
   deterministic recombination),
2. the *fixpoint driver layer* — pluggable schedules for the
   reachability loop (sequential / opsharded / frontier, see
   ``repro.mc.drivers``), and
3. the *sweep runner* — a declarative grid of benchmark
   configurations executed with per-run kernel statistics and
   resumable JSON/CSV artifacts.

Run:  python examples/parallel_sweep.py
"""

import tempfile

from repro import (CheckerConfig, ImageEngine, ModelChecker, models,
                   reachable_space)
from repro.bench.sweep import SweepSpec, run_sweep


def sliced_strategy_demo() -> None:
    # --- one image computation, monolithic vs sliced ----------------
    mono = ModelChecker(models.qrw_qts(5, 0.1, steps=2),
                        CheckerConfig(method="basic")).image()
    sliced = ModelChecker(models.qrw_qts(5, 0.1, steps=2),
                          CheckerConfig(method="basic",
                                        strategy="sliced",
                                        jobs=2)).image()
    print("one-step image of the noisy quantum walk (qrw5):")
    print(f"  monolithic: dim={mono.dimension} "
          f"time={mono.stats.seconds * 1000:.1f} ms")
    print(f"  sliced:     dim={sliced.dimension} "
          f"time={sliced.stats.seconds * 1000:.1f} ms "
          f"({sliced.stats.slices} cofactors, "
          f"{sliced.stats.parallel_tasks} on the pool)")
    assert sliced.dimension == mono.dimension

    # --- holding the engine (and its worker pool) across calls ------
    qts = models.qrw_qts(4, 0.1)
    with ImageEngine(qts, "basic", strategy="sliced", jobs=2) as engine:
        first = engine.compute_image()
        second = engine.compute_image(first.subspace)
        print(f"engine reuse: dim(T(S0))={first.dimension}, "
              f"dim(T(T(S0)))={second.dimension}")


def fixpoint_driver_demo() -> None:
    # --- the fixpoint driver layer: same space, three schedules -----
    # (sequential = one monolithic T(S) per round, opsharded = one
    # image task per operation tree-reduced with joins, frontier =
    # image only the newly added directions)
    qts = models.qrw_qts(4, 0.1)
    print("reachability of the noisy walk under each fixpoint driver:")
    dims = set()
    for driver in ("sequential", "opsharded", "frontier"):
        trace = reachable_space(qts, method="basic", driver=driver)
        print(f"  {driver:10s} {trace} "
              f"growth per round {trace.dimensions_delta}")
        dims.add(trace.dimension)
    assert len(dims) == 1  # every schedule reaches the same space


def sweep_runner_demo() -> None:
    # --- a declarative sweep: families x sizes x methods x specs ----
    # (the "specs" axis adds property-check rows whose verdicts land
    # in the CSV artifact next to the benchmark rows)
    spec = SweepSpec.from_dict({
        "name": "example",
        "models": ["ghz", "bv"],
        "sizes": [3, 4],
        "methods": ["basic", "contraction"],
        "specs": [None, "AG init"],
        "method_params": {"contraction": {"k1": 2, "k2": 2}},
    })
    with tempfile.TemporaryDirectory() as out_dir:
        result = run_sweep(spec, jobs=2, out_dir=out_dir, progress=print)
        print(f"{len(result.records)} runs -> {result.json_path}")
        # re-running against the same artifacts resumes (skips all):
        again = run_sweep(spec, jobs=2, out_dir=out_dir)
        print(f"resumed sweep skipped {again.skipped} of "
              f"{len(again.records)} runs")


def main() -> None:
    sliced_strategy_demo()
    fixpoint_driver_demo()
    sweep_runner_demo()


if __name__ == "__main__":
    main()
