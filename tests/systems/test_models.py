"""QTS model builders."""

import numpy as np
import pytest

from repro.errors import SystemError_
from repro.systems import models


class TestGHZ:
    def test_structure(self):
        qts = models.ghz_qts(4)
        assert qts.num_qubits == 4
        assert qts.initial.dimension == 1
        assert qts.symbols == ["ghz"]


class TestGrover:
    def test_plus_initial(self):
        qts = models.grover_qts(4)
        assert qts.initial.dimension == 1
        amps = qts.initial.basis[0].to_numpy().reshape(-1)
        # |+++-> on 4 qubits: uniform magnitude (1/sqrt(2))^4 = 1/4
        assert np.allclose(np.abs(amps), 0.25)

    def test_invariant_initial(self):
        qts = models.grover_qts(4, initial="invariant")
        assert qts.initial.dimension == 2

    def test_unknown_initial(self):
        with pytest.raises(SystemError_):
            models.grover_qts(4, initial="bogus")


class TestBV:
    def test_initial_is_zero_one(self):
        qts = models.bv_qts(4)
        amps = qts.initial.basis[0].to_numpy()
        assert amps[0, 0, 0, 1] == 1

    def test_custom_secret(self):
        qts = models.bv_qts(4, secret=[1, 0, 1])
        circuit = qts.operations[0].kraus_circuits[0]
        assert circuit.count_ops()["cx"] == 2


class TestQFT:
    def test_structure(self):
        qts = models.qft_qts(3)
        assert qts.initial.dimension == 1
        assert qts.symbols == ["qft"]


class TestQRW:
    def test_two_operations_three_kraus(self):
        qts = models.qrw_qts(4, 0.2)
        assert qts.symbols == ["T1", "T2"]
        assert qts.operation("T1").num_kraus == 1
        assert qts.operation("T2").num_kraus == 2

    def test_start_position(self):
        qts = models.qrw_qts(4, 0.2, start_position=5)
        amps = qts.initial.basis[0].to_numpy()
        assert amps[0, 1, 0, 1] == 1  # coin 0, position 101

    def test_every_operation_valid(self):
        qts = models.qrw_qts(3, 0.4)
        for op in qts.operations:
            assert op.is_trace_nonincreasing()


class TestBitflip:
    def test_structure(self):
        qts = models.bitflip_qts()
        assert qts.num_qubits == 6
        assert qts.initial.dimension == 3
        assert qts.operation("correct").num_kraus == 4
