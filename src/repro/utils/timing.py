"""Wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import time


class Stopwatch:
    """A restartable wall-clock stopwatch.

    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> elapsed = sw.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
