"""Pytest configuration: hypothesis profiles and common fixtures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
