"""Table II regeneration: contraction-partition parameter sweep.

The paper sweeps k1, k2 in 1..15 on 'Grover 15' and reports image
computation time per cell, showing a wide plateau of good parameters
with degradation only when both get large.  This harness runs the same
sweep on a Grover instance sized for pure Python.

Run:  ``python -m repro.bench.table2 [--qubits 8] [--kmax 8]``
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.image.engine import compute_image
from repro.systems import models
from repro.utils.tables import format_table


def sweep_stats(num_qubits: int = 8, kmax: int = 8,
                iterations: int = 2) -> List[List[dict]]:
    """``result[k1-1][k2-1]`` = stats dict for contraction(k1, k2).

    Each cell is :meth:`StatsRecorder.as_dict` output — seconds plus
    the cache hit rate and peak/post-GC live node counts.
    """
    grid: List[List[dict]] = []
    for k1 in range(1, kmax + 1):
        row: List[dict] = []
        for k2 in range(1, kmax + 1):
            qts = models.grover_qts(num_qubits, iterations=iterations)
            result = compute_image(qts, method="contraction",
                                   k1=k1, k2=k2)
            row.append(result.stats.as_dict())
        grid.append(row)
    return grid


def sweep(num_qubits: int = 8, kmax: int = 8,
          iterations: int = 2) -> List[List[float]]:
    """``result[k1-1][k2-1]`` = seconds for contraction(k1, k2)."""
    return [[cell["seconds"] for cell in row]
            for row in sweep_stats(num_qubits, kmax, iterations)]


def format_grid(grid: List[List[float]]) -> str:
    kmax = len(grid)
    headers = ["k1\\k2"] + [str(k2) for k2 in range(1, kmax + 1)]
    rows = [[str(k1 + 1)] + [f"{cell:.2f}" for cell in row]
            for k1, row in enumerate(grid)]
    return format_table(headers, rows)


def format_stats_grid(grid: List[List[dict]]) -> str:
    """Cells as ``seconds (hit%, post-GC/peak live nodes)``."""
    kmax = len(grid)
    headers = ["k1\\k2"] + [str(k2) for k2 in range(1, kmax + 1)]
    rows = []
    for k1, row in enumerate(grid):
        cells = [str(k1 + 1)]
        for cell in row:
            cells.append(f"{cell['seconds']:.2f} "
                         f"({100 * cell['cache_hit_rate']:.0f}%, "
                         f"{cell['live_nodes']}/{cell['peak_live_nodes']})")
        rows.append(cells)
    return format_table(headers, rows)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, default=8)
    parser.add_argument("--kmax", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=2)
    args = parser.parse_args(argv)
    grid = sweep_stats(args.qubits, args.kmax, args.iterations)
    print(f"Table II (reproduction) — contraction partition: time [s] "
          f"(cache hit rate, post-GC/peak live nodes), "
          f"Grover {args.qubits} x{args.iterations} iterations")
    print(format_stats_grid(grid))
    return 0


if __name__ == "__main__":
    sys.exit(main())
