"""Command-line interface.

Subcommands:

* ``image``  — one-step image computation on a built-in model,
* ``reach``  — reachability fixpoint,
* ``check``  — check a temporal specification (``--spec "AG inv"``),
* ``invariant`` — check ``T(S0) <= S0`` (``--strict`` for equality),
* ``crosscheck`` — compare the tdd and dense backends on one image
  (or on one ``--spec`` check),
* ``sweep``  — batch experiment runner (declarative spec, process-pool
  fan-out, resumable JSON/CSV artifacts, property-check rows),
* ``cache``  — manage the persistent result store
  (``ls``/``stats``/``gc``/``export``/``import``, see
  :mod:`repro.store.cli`),
* ``table1`` / ``table2`` / ``smoke`` — forward to the benchmark
  harnesses (all thin wrappers over the sweep runner).

Engine flags build one validated
:class:`~repro.mc.config.CheckerConfig`: ``--backend {tdd,dense}``
(the dense statevector reference is exponential — small sizes only),
``--strategy {monolithic,sliced}`` with ``--jobs N`` (parallel cofactor
contraction, see ``repro.image.sliced``) and the per-method parameters.
Mismatched combinations (tdd-only knobs with ``--backend dense``,
``--jobs`` without the sliced strategy) are rejected with a clear
error instead of being silently dropped.

Specs (``check``/``crosscheck --spec``) use the text language of
``repro.mc.specs``: ``AG``/``EF`` — optionally bounded, ``AG[<=k]`` /
``EF[<=k]`` — over atoms the model registers (``init`` always works;
e.g. grover registers ``inv``, ``marked``, ``plus``, ``ancilla_plus``)
combined with ``&``, ``|``, ``~`` and parentheses.

``image``/``reach``/``check`` accept ``--direction
{forward,backward}`` (backward = preimage analysis against the adjoint
Kraus family: ``reach`` computes the states that can *reach* the
initial set, ``check`` decides the spec from the event set backwards)
and ``--bound K`` (depth-limit the fixpoint to K image steps).
``reach``/``check`` accept ``--store DIR``: the fixpoint behind the
run is warm-started from (and, on a miss, recorded into) the
disk-backed content-addressed :class:`~repro.store.ResultStore` at
``DIR`` — only converged, unbounded fixpoints are admitted, so the
store never changes a verdict, it only collapses repeat runs to one
confirming iteration.
``reach``/``check`` additionally take ``--driver
{sequential,opsharded,frontier}`` — the fixpoint schedule of
``repro.mc.drivers`` (``--frontier`` remains as shorthand for the
frontier driver).  A failed ``AG`` / satisfied ``EF`` check also
prints the counterexample witness trace — the operation path whose
forward replay reproduces the event.

Examples::

    python -m repro image grover --size 4 --method contraction
    python -m repro image qrw --size 5 --strategy sliced --jobs 4
    python -m repro reach qrw --size 4 --frontier
    python -m repro reach qrw --size 4 --driver opsharded
    python -m repro check grover --size 4 --spec "AG inv"
    python -m repro check grover --size 3 --spec "EF marked" --backend dense
    python -m repro check grover --size 3 --spec "AG plus" --direction backward
    python -m repro check qrw --size 4 --spec "EF[<=2] start"
    python -m repro check bitflip --spec "AG errors" --bound 3
    python -m repro image ghz --size 3 --backend dense
    python -m repro crosscheck grover --size 4
    python -m repro crosscheck grover --size 3 --spec "AG inv"
    python -m repro invariant grover --size 4 --initial invariant
    python -m repro sweep --models ghz,bv --sizes 3,4 --methods basic \\
        --jobs 2 --out results
    python -m repro check grover --size 3 --spec "AG inv" \\
        --store .repro-store
    python -m repro cache stats --store .repro-store
    python -m repro cache gc --store .repro-store --max-bytes 1000000
    python -m repro table1 --scale small
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.image.engine import DIRECTIONS
from repro.image.sliced import DEFAULT_SLICE_DEPTH, STRATEGIES
from repro.mc.backends import cross_validate, make_backend
from repro.mc.checker import ModelChecker
from repro.mc.config import BACKENDS, CheckerConfig
from repro.mc.drivers import DEFAULT_DRIVER, DRIVERS
from repro.systems import models

#: model name -> builder(size, args); argparse options map onto the
#: keyword arguments of models.build_model
_MODELS: Dict[str, Callable] = {
    "ghz": lambda size, args: models.build_model("ghz", size),
    "grover": lambda size, args: models.build_model(
        "grover", size, initial=args.initial, iterations=args.iterations),
    "bv": lambda size, args: models.build_model("bv", size),
    "qft": lambda size, args: models.build_model("qft", size),
    "qrw": lambda size, args: models.build_model(
        "qrw", size, noise_probability=args.noise, steps=args.steps),
    "bitflip": lambda size, args: models.build_model("bitflip", size),
    "qpe": lambda size, args: models.build_model("qpe", size,
                                                 phase=args.phase),
    "wstate": lambda size, args: models.build_model("wstate", size),
    "adder": lambda size, args: models.build_model("adder", size),
    "hiddenshift": lambda size, args: models.build_model("hiddenshift",
                                                         size),
}


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("model", choices=sorted(_MODELS))
    parser.add_argument("--size", "--n", type=int, default=4,
                        help="qubit count (ignored for bitflip)")
    parser.add_argument("--method", default="contraction",
                        choices=["basic", "addition", "contraction",
                                 "hybrid"])
    parser.add_argument("--k", type=int, default=1,
                        help="addition partition slice count")
    parser.add_argument("--k1", type=int, default=4)
    parser.add_argument("--k2", type=int, default=4)
    parser.add_argument("--initial", default="plus",
                        help="grover initial space (plus|invariant)")
    parser.add_argument("--iterations", type=int, default=1,
                        help="grover iterations per transition")
    parser.add_argument("--steps", type=int, default=1,
                        help="qrw steps per transition")
    parser.add_argument("--noise", type=float, default=0.1,
                        help="qrw coin bit-flip probability")
    parser.add_argument("--phase", type=float, default=0.625,
                        help="qpe phase to estimate")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    # not part of _add_model_arguments: crosscheck always runs both
    # engines, so only commands that honour the flag accept it
    parser.add_argument("--backend", default="tdd", choices=list(BACKENDS),
                        help="computation engine (dense = exponential "
                             "statevector reference, small sizes only)")


def _add_driver_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--driver", default=DEFAULT_DRIVER,
                        choices=list(DRIVERS),
                        help="fixpoint schedule: sequential (one "
                             "monolithic T(S) per round), opsharded "
                             "(per-operation image tasks, tree-reduced "
                             "joins), frontier (image only the newly "
                             "added directions)")


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="persistent result store: warm-start the "
                             "fixpoint from DIR and record converged "
                             "unbounded results back into it (manage "
                             "with 'repro cache')")


def _add_direction_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--direction", default="forward",
                        choices=list(DIRECTIONS),
                        help="analysis orientation (backward = preimage "
                             "fixpoint against the adjoint Kraus family)")
    parser.add_argument("--bound", type=int, default=0,
                        help="depth-limit the fixpoint to K image steps "
                             "(0 = run to saturation)")


def _add_strategy_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--strategy", default="monolithic",
                        choices=list(STRATEGIES),
                        help="contraction execution strategy (sliced = "
                             "parallel cofactor decomposition)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="sliced-strategy worker pool width "
                             "(default: run cofactors inline)")
    parser.add_argument("--slice-depth", type=int,
                        default=DEFAULT_SLICE_DEPTH, dest="slice_depth",
                        help="number of top summed index levels the "
                             "sliced strategy fixes (2^depth cofactors)")


def _method_params(args) -> dict:
    if args.method == "addition":
        return {"k": args.k}
    if args.method == "contraction":
        return {"k1": args.k1, "k2": args.k2}
    if args.method == "hybrid":
        return {"k": args.k, "k1": args.k1, "k2": args.k2}
    return {}


def _build(args):
    return _MODELS[args.model](args.size, args)


def _config(args) -> CheckerConfig:
    # the single validated source of truth for every engine knob;
    # explicit tdd-only flags with --backend dense raise ConfigError
    # here instead of being silently dropped
    return CheckerConfig.from_cli_args(args)


def _print_kernel_stats(stats) -> None:
    if stats.extra.get("backend") == "dense":
        return  # no symbolic kernel involved
    lookups = stats.cache_hits + stats.cache_misses
    print(f"cache      = {stats.cache_hits}/{lookups} hits "
          f"({100 * stats.cache_hit_rate:.0f}%)")
    print(f"live nodes = {stats.live_nodes} after GC "
          f"(peak {stats.peak_live_nodes}, "
          f"reclaimed {stats.nodes_reclaimed})")
    if stats.slices:
        print(f"slices     = {stats.slices} cofactors "
              f"({stats.parallel_tasks} on the worker pool)")


def _engine_label(config: CheckerConfig, frontier: bool = False) -> str:
    # the dense reference ignores method/strategy/frontier — the config
    # echo only prints what actually took effect
    label = config.describe()
    if frontier and config.backend == "tdd":
        label += " frontier=True"
    return label


def _cmd_image(args) -> int:
    config = _config(args)
    result = make_backend(config).compute_image(
        _build(args), direction=config.direction)
    print(f"model={args.model}{args.size} {_engine_label(config)}")
    label = "T(S0)" if config.direction == "forward" else "T~(S0)"
    print(f"dim({label}) = {result.dimension}")
    print(f"time       = {result.stats.seconds:.3f} s")
    print(f"max #node  = {result.stats.max_nodes}")
    _print_kernel_stats(result.stats)
    return 0


def _open_store(args):
    """The ResultStore named by ``--store``, or ``None``.

    Imported lazily: commands that never touch the store should not
    pay for (or fail on) the sqlite machinery.
    """
    if getattr(args, "store", None) is None:
        return None
    from repro.store import ResultStore
    return ResultStore(args.store)


def _cmd_reach(args) -> int:
    config = _config(args)
    qts = _build(args)
    store = _open_store(args)
    store_line = None
    try:
        # same admission rule as the checker: only unbounded fixpoints
        # are warm-started or recorded (a bounded reachable set is not
        # closed, so it must never seed — or be seeded by — the store)
        warm = (store.lookup(qts, qts.initial, config.direction, 0)
                if store is not None and config.bound == 0 else None)
        trace = make_backend(config).reachable(qts,
                                               frontier=args.frontier,
                                               direction=config.direction,
                                               bound=config.bound,
                                               warm_start=warm)
        if store is not None and config.bound == 0:
            if warm is not None:
                store_line = f"hit (seed dim {warm.dimension})"
            else:
                stored = store.store(qts, qts.initial, config.direction,
                                     0, trace)
                store_line = ("miss (recorded)" if stored
                              else "miss (not recorded)")
    finally:
        if store is not None:
            store.close()
    print(f"model={args.model}{args.size} "
          f"{_engine_label(config, frontier=args.frontier)}")
    if store_line is not None:
        print(f"store      = {store_line}")
    print(f"dimensions = {trace.dimensions}")
    print(f"converged  = {trace.converged} "
          f"({trace.iterations} iterations)")
    print(f"time       = {trace.stats.seconds:.3f} s")
    print(f"max #node  = {trace.stats.max_nodes}")
    _print_kernel_stats(trace.stats)
    return 0


def _cmd_check(args) -> int:
    config = _config(args)
    checker = ModelChecker(_build(args), config)
    store = _open_store(args)
    try:
        result = checker.check(args.spec,
                               max_iterations=args.max_iterations,
                               reach_cache=store)
    finally:
        if store is not None:
            store.close()
    print(f"model={args.model}{args.size} {_engine_label(config)}")
    if store is not None and "cache_warm" in result.stats.extra:
        print("store      = "
              + ("hit" if result.stats.extra["cache_warm"] else
                 "miss (recorded)"))
    print(f"spec       = {result.spec}")
    print(f"verdict    = {result.verdict}")
    print(f"reachable  = dim {result.reachable_dimension} "
          f"{result.dimensions} "
          f"(converged={result.converged}, "
          f"{result.iterations} iterations)")
    if result.witness is not None:
        role = ("overlap witness" if result.kind == "EF"
                else "violating directions")
        if result.direction == "backward":
            role = "initial directions reaching the event"
        print(f"witness    = dim {result.witness_dimension} ({role})")
    if result.witness_trace is not None:
        trace = result.witness_trace
        path = " -> ".join(trace.symbols) if trace.symbols else "<initial>"
        replay = "replay ok" if trace.valid else "REPLAY FAILED"
        dims = [s.dimension for s in trace.subspaces]
        print(f"trace      = {path} ({trace.length} steps, {replay}, "
              f"dims {dims})")
    print(f"time       = {result.stats.seconds:.3f} s")
    _print_kernel_stats(result.stats)
    return 0 if result.holds else 1


def _cmd_crosscheck(args) -> int:
    config = CheckerConfig(method=args.method,
                           method_params=_method_params(args))
    report = cross_validate(_build(args), spec=args.spec or None,
                            config=config)
    print(f"model={args.model}{args.size} method={args.method}")
    if report.spec is not None:
        print(f"spec      = {report.spec}")
        print(f"tdd       = {report.tdd_verdict} "
              f"(reachable dim {report.tdd_dimension}, "
              f"{report.tdd_seconds:.3f} s)")
        print(f"dense     = {report.dense_verdict} "
              f"(reachable dim {report.dense_dimension}, "
              f"{report.dense_seconds:.3f} s)")
    else:
        print(f"tdd   dim = {report.tdd_dimension} "
              f"({report.tdd_seconds:.3f} s)")
        print(f"dense dim = {report.dense_dimension} "
              f"({report.dense_seconds:.3f} s)")
    print(f"agree     = {report.agree}")
    return 0 if report.agree else 1


def _cmd_invariant(args) -> int:
    # implemented on the unified check verb: T(S0) <= S0 is AG S0 from
    # S0 (plus an image-equality comparison when --strict)
    config = _config(args)
    checker = ModelChecker(_build(args), config)
    holds = checker.check_invariant(strict=args.strict)
    relation = "=" if args.strict else "<="
    print(f"T(S0) {relation} S0 for {args.model}{args.size} "
          f"({_engine_label(config)}): {holds}")
    return 0 if holds else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Image computation for quantum "
                                  "transition systems (DATE 2025)")
    sub = parser.add_subparsers(dest="command", required=True)

    image = sub.add_parser("image", help="one-step image computation")
    _add_model_arguments(image)
    _add_backend_argument(image)
    _add_strategy_arguments(image)
    _add_direction_arguments(image)
    image.set_defaults(func=_cmd_image)

    reach = sub.add_parser("reach", help="reachability fixpoint")
    _add_model_arguments(reach)
    _add_backend_argument(reach)
    _add_strategy_arguments(reach)
    _add_direction_arguments(reach)
    _add_driver_argument(reach)
    _add_store_argument(reach)
    reach.add_argument("--frontier", action="store_true",
                       help="shorthand for --driver frontier")
    reach.set_defaults(func=_cmd_reach)

    check = sub.add_parser(
        "check", help="check a temporal specification (AG/EF over "
                      "registered subspace atoms, bounded AG[<=k]/"
                      "EF[<=k], forward or backward)")
    _add_model_arguments(check)
    _add_backend_argument(check)
    _add_strategy_arguments(check)
    _add_direction_arguments(check)
    _add_driver_argument(check)
    _add_store_argument(check)
    check.add_argument("--spec", required=True,
                       help="specification text, e.g. \"AG inv\", "
                            "\"EF marked\", \"AG (inv & ~bad)\", "
                            "\"EF[<=3] marked\"")
    check.add_argument("--max-iterations", type=int, default=0,
                       dest="max_iterations",
                       help="bound the reachability fixpoint "
                            "(0 = until the dimension saturates)")
    check.set_defaults(func=_cmd_check)

    invariant = sub.add_parser("invariant", help="check T(S0) <= S0")
    _add_model_arguments(invariant)
    _add_backend_argument(invariant)
    _add_strategy_arguments(invariant)
    invariant.add_argument("--strict", action="store_true")
    invariant.set_defaults(func=_cmd_invariant)

    crosscheck = sub.add_parser(
        "crosscheck", help="compare tdd and dense backends on one image "
                           "or one --spec check")
    _add_model_arguments(crosscheck)
    crosscheck.add_argument("--spec", default=None,
                            help="cross-validate a spec check instead "
                                 "of an image")
    crosscheck.set_defaults(func=_cmd_crosscheck)

    sweep = sub.add_parser(
        "sweep", help="batch experiment runner (resumable, parallel)")
    sweep.set_defaults(func=lambda args: __import__(
        "repro.bench.sweep", fromlist=["main"]).main(args.sweep_args))

    cache = sub.add_parser(
        "cache", help="manage the persistent result store "
                      "(ls/stats/gc/export/import)")
    cache.set_defaults(func=lambda args: __import__(
        "repro.store.cli", fromlist=["main"]).main(args.cache_args))

    table1 = sub.add_parser("table1", help="regenerate Table I")
    table1.add_argument("--scale", default="small",
                        choices=["small", "medium", "paper"])
    table1.add_argument("--jobs", type=int, default=1)
    table1.add_argument("--out", default=None)
    table1.set_defaults(func=lambda args: __import__(
        "repro.bench.table1", fromlist=["main"]).main(
            ["--scale", args.scale, "--jobs", str(args.jobs)]
            + (["--out", args.out] if args.out else [])))

    table2 = sub.add_parser("table2", help="regenerate Table II")
    table2.add_argument("--qubits", type=int, default=7)
    table2.add_argument("--kmax", type=int, default=6)
    table2.add_argument("--jobs", type=int, default=1)
    table2.add_argument("--out", default=None)
    table2.set_defaults(func=lambda args: __import__(
        "repro.bench.table2", fromlist=["main"]).main(
            ["--qubits", str(args.qubits), "--kmax", str(args.kmax),
             "--jobs", str(args.jobs)]
            + (["--out", args.out] if args.out else [])))

    smoke = sub.add_parser("smoke", help="run the <60s smoke benchmark")
    smoke.add_argument("--model", default="grover")
    smoke.add_argument("--size", type=int, default=6)
    smoke.add_argument("--strategy", default="monolithic",
                       choices=list(STRATEGIES))
    smoke.add_argument("--jobs", type=int, default=None)
    smoke.set_defaults(func=lambda args: __import__(
        "repro.bench.smoke", fromlist=["main"]).main(
            ["--model", args.model, "--size", str(args.size),
             "--strategy", args.strategy]
            + (["--jobs", str(args.jobs)] if args.jobs else [])))

    # ``sweep`` and ``cache`` forward their whole tails to their
    # modules' own parsers so the flags live in one place
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        args = parser.parse_args(["sweep"])
        args.sweep_args = list(argv[1:])
    elif argv and argv[0] == "cache":
        args = parser.parse_args(["cache"])
        args.cache_args = list(argv[1:])
    else:
        args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
