"""Reachability analysis by repeated image computation.

The reachable space of a QTS is the least subspace containing ``S0``
and closed under every operation:  ``R = lub_k S_k`` with
``S_{k+1} = S_k v T(S_k)``.  Dimensions are integers bounded by
``2^n``, so the iteration terminates as soon as the dimension stops
growing — the standard symbolic-model-checking fixpoint with joins in
place of unions (paper, Sections I and III).

:func:`reachable_space` is a thin façade: it builds the
:class:`~repro.image.engine.ImageEngine`, picks a fixpoint *driver*
(:mod:`repro.mc.drivers` — ``sequential`` / ``opsharded`` /
``frontier``) and delegates the loop, keeping only the bookkeeping
(trace, stopwatch, GC baseline, engine teardown) here.
:class:`ReachabilityCache` lets batch runners warm-start a fixpoint
from a previously computed reachable space when only the image method
or execution strategy changed — the reachable subspace itself is
method-independent.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ReproError
from repro.image.engine import ImageEngine
from repro.image.sliced import DEFAULT_SLICE_DEPTH
from repro.mc.drivers import make_driver, resolve_driver
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.io import from_dict, payload_digest, to_dict
from repro.utils.stats import StatsRecorder
from repro.utils.timing import Stopwatch


@dataclass
class ReachabilityTrace:
    """The fixpoint iteration record."""

    subspace: Subspace
    dimensions: List[int] = field(default_factory=list)
    iterations: int = 0
    stats: StatsRecorder = field(default_factory=StatsRecorder)
    converged: bool = True
    direction: str = "forward"
    bound: int = 0

    @property
    def dimension(self) -> int:
        return self.subspace.dimension

    @property
    def dimensions_delta(self) -> List[int]:
        """Per-round dimension growth (one entry per iteration)."""
        return [b - a for a, b in zip(self.dimensions,
                                      self.dimensions[1:])]

    def __repr__(self) -> str:
        return (f"ReachabilityTrace(dim={self.dimension}, "
                f"iterations={self.iterations}, "
                f"converged={self.converged}, "
                f"direction={self.direction!r})")


def reachable_space(qts: QuantumTransitionSystem,
                    method: str = "contraction",
                    initial: Optional[Subspace] = None,
                    max_iterations: int = 0,
                    frontier: bool = False,
                    gc: bool = True,
                    strategy: str = "monolithic",
                    jobs: Optional[int] = None,
                    slice_depth: int = DEFAULT_SLICE_DEPTH,
                    direction: str = "forward",
                    bound: int = 0,
                    driver: Optional[str] = None,
                    warm_start: Optional[Subspace] = None,
                    batched: bool = True,
                    **params) -> ReachabilityTrace:
    """Compute the reachable subspace of ``qts``.

    ``max_iterations`` bounds the fixpoint loop (0 = until the
    dimension saturates, which needs at most ``2^n`` rounds).  The
    image computer (and therefore its cached transition TDDs) is
    reused across iterations, as is the execution strategy's worker
    pool and cofactor-slice cache when ``strategy="sliced"`` (see
    :mod:`repro.image.sliced`; ``jobs`` sets the pool width,
    ``slice_depth`` the number of top summed levels to fix).

    ``driver`` selects the fixpoint schedule (see
    :mod:`repro.mc.drivers`): ``sequential`` (the default; one
    monolithic ``T(S_k)`` per round, bit-for-bit the pre-driver
    behaviour), ``opsharded`` (per-operation image tasks tree-reduced
    with joins) or ``frontier``.  The legacy ``frontier=True`` flag is
    shorthand for ``driver="frontier"``.

    ``direction="backward"`` runs the same fixpoint against the
    *adjoint* transition relation (cached Kraus-dagger operator TDDs,
    see :meth:`~repro.systems.qts.QuantumTransitionSystem.adjoint`):
    the result is the space of states that can *reach* ``initial``,
    the standard symbolic-model-checking complement of forward
    reachability.  All four methods, both execution strategies and all
    three drivers apply unchanged.  Direction validation happens once,
    in the :class:`~repro.image.engine.ImageEngine`; an unknown
    direction propagates from there as a :class:`ReproError`.

    ``bound`` is the depth limit of bounded analysis: a positive value
    stops after at most ``bound`` image steps (so the result is the
    space reachable within ``bound`` transitions) and takes precedence
    over ``max_iterations``.

    ``warm_start`` seeds the fixpoint with an extra subspace joined
    onto ``initial`` before the first round.  Seeding with a
    previously computed reachable space of the *same* fixpoint (see
    :class:`ReachabilityCache`) collapses the iteration ladder to a
    single confirming round; soundness requires the seed to lie inside
    the true reachable space, which the cache's exact keying
    guarantees.

    ``gc=True`` (the default) runs the manager's mark-and-sweep between
    iterations: the accumulated subspace, the frontier and the
    computer's cached operator TDDs stay pinned (they are live
    handles), while the intermediate diagrams of the finished round are
    reclaimed — this is what keeps the live-node population flat over
    long fixpoints.  The trace stats report the cache hit/miss deltas
    and GC activity of the whole run.
    """
    driver_name = resolve_driver(driver, frontier)
    fixpoint = make_driver(driver_name)
    engine = ImageEngine(qts, method, strategy=strategy, jobs=jobs,
                         slice_depth=slice_depth, direction=direction,
                         batched=batched, **params)
    current = initial if initial is not None else qts.initial
    if current.dimension == 0:
        engine.close()
        raise ReproError("reachability from the zero subspace is trivial; "
                         "set an initial space first")
    if warm_start is not None:
        current = current.join(warm_start)
    trace = ReachabilityTrace(subspace=current,
                              dimensions=[current.dimension],
                              direction=direction, bound=bound)
    if strategy != "monolithic":
        trace.stats.extra["strategy"] = strategy
    if direction != "forward":
        trace.stats.extra["direction"] = direction
    if driver_name != "sequential":
        trace.stats.extra["driver"] = driver_name
    limit = max_iterations if max_iterations > 0 else 2 ** qts.num_qubits
    if bound > 0:
        limit = min(limit, bound)
    manager = qts.manager
    baseline = manager.cache_counters()
    watch = Stopwatch().start()
    try:
        fixpoint.run(engine, trace, limit, gc=gc)
    finally:
        # stop the clock before releasing the engine: the sliced
        # strategy's pool shutdown (ProcessPoolExecutor.shutdown with
        # wait=True) is teardown, not fixpoint work, and must not be
        # billed to the trace
        trace.stats.seconds = watch.stop()
        engine.close()
    if gc:
        manager.collect()
    trace.stats.record_manager(manager, baseline)
    return trace


# ----------------------------------------------------------------------
# warm-start cache
# ----------------------------------------------------------------------
#: per-system memo: the operation list is fixed at construction, so
#: the hash over every gate matrix only ever needs computing once
_SYSTEM_FINGERPRINTS: "weakref.WeakKeyDictionary" = \
    weakref.WeakKeyDictionary()


def system_fingerprint(qts: QuantumTransitionSystem) -> str:
    """A content hash of the transition relation.

    Two QTS instances with the same qubit count and the same operation
    list (symbols, Kraus circuit gate sequences, gate matrices) have
    the same fingerprint even when they live in different managers —
    the property the :class:`ReachabilityCache` keys on.  Memoised per
    instance (a cache lookup-then-store pair must not hash every gate
    matrix twice); the memo is safe because a QTS's operations are
    immutable after construction.
    """
    cached = _SYSTEM_FINGERPRINTS.get(qts)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(str(qts.num_qubits).encode())
    for op in qts.operations:
        digest.update(op.symbol.encode())
        for circuit in op.kraus_circuits:
            for gate in circuit.gates:
                digest.update(gate.name.encode())
                digest.update(repr((gate.targets, gate.controls,
                                    gate.control_states)).encode())
                digest.update(np.ascontiguousarray(gate.matrix).tobytes())
    fingerprint = digest.hexdigest()
    _SYSTEM_FINGERPRINTS[qts] = fingerprint
    return fingerprint


def subspace_fingerprint(subspace: Subspace) -> str:
    """A content hash of a subspace's orthonormal basis."""
    return payload_digest([to_dict(vector) for vector in subspace.basis])


class ReachabilityCache:
    """Reachable subspaces keyed by what actually determines them.

    The fixpoint result depends on the transition relation, the
    initial subspace, the analysis direction and the depth bound — not
    on the image method, the execution strategy or the driver.  The
    cache stores basis vectors through the :mod:`repro.tdd.io` dict
    codec, so an entry computed in one manager warm-starts a run whose
    QTS was rebuilt from scratch (the batch-sweep shape: every run
    constructs its own system).

    Entries are only stored for *converged* unbounded runs — judged
    from the trace itself (``trace.bound``/``trace.converged``), not
    just the ``bound`` argument, so a depth-limited trace can never be
    laundered into the unbounded key space by a caller passing
    ``bound=0`` — and served only on an exact key match (the key
    includes the bound, so a bounded query never consumes an unbounded
    entry either).  A warm hit is a subspace that the caller joins
    into the fixpoint seed (see :func:`reachable_space`), so a cold
    cache is merely slow, never wrong.

    The disk-backed :class:`~repro.store.ResultStore` implements the
    same ``lookup``/``store`` protocol with the same admission rule;
    ``source`` tells warm rows apart (``"memory"`` vs ``"disk"``).
    """

    source = "memory"

    def __init__(self) -> None:
        self._entries: Dict[tuple, List[dict]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(qts: QuantumTransitionSystem, initial: Subspace,
            direction: str, bound: int) -> tuple:
        return (system_fingerprint(qts), subspace_fingerprint(initial),
                direction, bound)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def lookup(self, qts: QuantumTransitionSystem, initial: Subspace,
               direction: str = "forward",
               bound: int = 0) -> Optional[Subspace]:
        """The cached reachable space, re-interned into ``qts``'s manager."""
        payloads = self._entries.get(self.key(qts, initial, direction,
                                              bound))
        if payloads is None:
            self.misses += 1
            return None
        self.hits += 1
        vectors = [from_dict(qts.manager, data) for data in payloads]
        return qts.space.span(vectors)

    def store(self, qts: QuantumTransitionSystem, initial: Subspace,
              direction: str, bound: int, trace: ReachabilityTrace) -> None:
        """Record a finished fixpoint (converged, unbounded runs only).

        The guard inspects ``trace.bound`` as well as the caller's
        ``bound``: a bounded reachable set is not closed under the
        transition relation, so storing one under an unbounded key
        would later seed an unbounded fixpoint with unreachable
        directions — a wrong answer, not just a slow one.
        """
        if not trace.converged or bound != 0 or trace.bound != 0:
            return
        self._entries[self.key(qts, initial, direction, bound)] = \
            [to_dict(vector) for vector in trace.subspace.basis]

    def __repr__(self) -> str:
        return (f"ReachabilityCache(entries={len(self._entries)}, "
                f"hits={self.hits}, misses={self.misses})")
