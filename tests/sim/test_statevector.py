"""Dense statevector simulator."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.gates import library as gl
from repro.sim.statevector import (apply_gate, basis_state_from_int,
                                   basis_state_vector, circuit_unitary,
                                   run_circuit, state_to_vector,
                                   uniform_state)


class TestStates:
    def test_basis_state(self):
        state = basis_state_vector(3, [1, 0, 1])
        assert state[1, 0, 1] == 1
        assert np.abs(state).sum() == 1

    def test_basis_state_length_check(self):
        with pytest.raises(ValueError):
            basis_state_vector(2, [0, 1, 1])

    def test_basis_from_int(self):
        assert basis_state_from_int(3, 5)[1, 0, 1] == 1

    def test_uniform(self):
        state = uniform_state(3)
        assert np.allclose(state_to_vector(state),
                           np.full(8, 8 ** -0.5))


class TestApplyGate:
    def test_h_on_first(self):
        state = basis_state_vector(2, [0, 0])
        out = apply_gate(state, gl.h(0), 2)
        expect = np.zeros((2, 2))
        expect[0, 0] = expect[1, 0] = 2 ** -0.5
        assert np.allclose(out, expect)

    def test_x_on_second(self):
        state = basis_state_vector(2, [0, 0])
        out = apply_gate(state, gl.x(1), 2)
        assert out[0, 1] == 1

    def test_cx_both_orders(self):
        state = basis_state_vector(2, [1, 0])
        out = apply_gate(state, gl.cx(0, 1), 2)
        assert out[1, 1] == 1
        state = basis_state_vector(2, [0, 1])
        out = apply_gate(state, gl.cx(1, 0), 2)
        assert out[1, 1] == 1

    def test_scalar_gate(self):
        state = basis_state_vector(1, [0])
        out = apply_gate(state, gl.scalar(0.5j), 1)
        assert np.allclose(out, 0.5j * state)

    def test_batch_axis_preserved(self):
        batch = np.eye(4, dtype=complex).reshape(2, 2, 4)
        out = apply_gate(batch, gl.x(0), 2)
        assert out.shape == (2, 2, 4)
        assert out[1, 0, 0] == 1  # |00> column got flipped to |10>


class TestCircuits:
    def test_run_circuit_bell(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        out = run_circuit(circuit, basis_state_vector(2, [0, 0]))
        vec = state_to_vector(out)
        assert np.allclose(vec, [2 ** -0.5, 0, 0, 2 ** -0.5])

    def test_circuit_unitary_identity(self):
        assert np.allclose(circuit_unitary(QuantumCircuit(2)), np.eye(4))

    def test_circuit_unitary_composition(self, rng):
        from repro.circuits.library import random_circuit
        a = random_circuit(3, 8, seed=1)
        b = random_circuit(3, 8, seed=2)
        ua, ub = circuit_unitary(a), circuit_unitary(b)
        uc = circuit_unitary(a.compose(b))
        assert np.allclose(uc, ub @ ua, atol=1e-9)

    def test_nonunitary_circuit(self):
        circuit = QuantumCircuit(1).proj(0, 1)
        u = circuit_unitary(circuit)
        assert np.allclose(u, [[0, 0], [0, 1]])
