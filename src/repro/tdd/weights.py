"""Complex edge-weight canonicalisation.

TDD canonicity requires weights to be usable as dictionary keys, so
every weight stored in a node is first clamped to zero if negligible
and then rounded to :data:`repro.config.WEIGHT_DECIMALS` digits.  All
weight handling shared by the TDD algorithms lives here.
"""

from __future__ import annotations

from repro.config import WEIGHT_DECIMALS, WEIGHT_EPS

WeightKey = tuple


def canonical(value: complex) -> complex:
    """Clamp-and-round ``value`` to the canonical weight grid.

    Only valid for *normalised* weights (magnitude <= 1, i.e. the child
    weights stored inside nodes): the clamp threshold is absolute, so
    applying it to unnormalised outer weights would destroy genuinely
    tiny amplitudes such as the 2^-n/2 of a wide uniform superposition.

    >>> canonical(1e-14 + 1j * (0.5 + 1e-15))
    0.5j
    """
    re = value.real
    im = value.imag
    if abs(re) < WEIGHT_EPS:
        re = 0.0
    if abs(im) < WEIGHT_EPS:
        im = 0.0
    # ``+ 0.0`` folds -0.0 into +0.0 so keys are unambiguous.
    return complex(round(re, WEIGHT_DECIMALS) + 0.0,
                   round(im, WEIGHT_DECIMALS) + 0.0)


def key(value: complex) -> WeightKey:
    """Hashable key of an (already canonical) weight."""
    return (value.real, value.imag)


def is_zero(value: complex) -> bool:
    return value.real == 0.0 and value.imag == 0.0


def approx_equal(a: complex, b: complex, tol: float = 1e-8) -> bool:
    return abs(a - b) <= tol
