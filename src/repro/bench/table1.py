"""Table I regeneration: three image computation methods across the
five benchmark families.

The paper runs Grover/QFT/BV/GHZ/QRW at up to 500 qubits on a C++ TDD
engine; this pure-Python reproduction runs the same families with the
same three methods and the same parameters (addition k = 1, contraction
k1 = k2 = 4) at sizes scaled to interpreter speed.  Pass
``--scale paper`` to attempt the paper's original sizes for the
families where pure Python can reach them (GHZ/BV under contraction).

The grid itself is a :mod:`repro.bench.sweep` spec; ``--jobs N`` fans
the cells over a process pool and ``--out DIR`` makes the run
resumable (JSON/CSV artifacts).

Run:  ``python -m repro.bench.table1 [--scale small|medium|paper]``
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.runner import BenchRow
from repro.bench.sweep import RunSpec, SweepSpec, run_sweep
from repro.mc.config import CheckerConfig
from repro.utils.tables import format_table

#: method name -> image-computation parameters (the Table I settings)
TABLE1_METHODS: Dict[str, dict] = {
    "basic": {},
    "addition": {"k": 1},
    "contraction": {"k1": 4, "k2": 4},
}

#: family -> ((model name, model params), sizes per scale, method skip)
#: Grover runs two composed iterations — the regime where the
#: monolithic operator TDD grows and the partition methods pay off
#: (EXPERIMENTS.md); QRW runs four composed walk steps.
FamilySpec = Tuple[Tuple[str, dict], Dict[str, List[int]],
                   Callable[[str, int], bool]]

FAMILIES: Dict[str, FamilySpec] = {
    "Grover": (
        ("grover", {"iterations": 2}),
        {"small": [6, 8], "medium": [6, 8, 9], "paper": [15, 18, 20, 40]},
        lambda method, size: method != "contraction" and size > 9,
    ),
    "QFT": (
        ("qft", {}),
        {"small": [8, 10], "medium": [8, 10, 12, 16, 20],
         "paper": [15, 18, 20, 30, 50, 100]},
        lambda method, size: method != "contraction" and size > 12,
    ),
    "BV": (
        ("bv", {}),
        {"small": [20, 40], "medium": [20, 40, 60, 100],
         "paper": [100, 200, 300, 400, 500]},
        lambda method, size: method != "contraction" and size > 100,
    ),
    "GHZ": (
        ("ghz", {}),
        {"small": [20, 40], "medium": [20, 40, 60, 100],
         "paper": [100, 200, 300, 400, 500]},
        lambda method, size: method != "contraction" and size > 100,
    ),
    "QRW": (
        ("qrw", {"noise_probability": 0.1, "steps": 4}),
        {"small": [5, 6], "medium": [5, 6, 7, 8], "paper": [15, 18, 20, 30]},
        lambda method, size: method != "contraction" and size > 8,
    ),
}


def _cell_config(method: str, params: dict, strategy: str) -> CheckerConfig:
    return CheckerConfig(method=method, strategy=strategy,
                         method_params=dict(params))


def table1_spec(scale: str = "small",
                families: Optional[List[str]] = None,
                strategy: str = "monolithic") -> SweepSpec:
    """The Table I grid as a sweep spec (skipped cells excluded)."""
    runs: List[RunSpec] = []
    for family, ((model, model_params), size_map, skip) in FAMILIES.items():
        if families and family not in families:
            continue
        for size in size_map[scale]:
            for method, params in TABLE1_METHODS.items():
                if skip(method, size):
                    continue
                runs.append(RunSpec(
                    model=model, size=size,
                    config=_cell_config(method, params, strategy),
                    model_params=dict(model_params),
                    label=f"{family}{size}"))
    return SweepSpec(name=f"table1-{scale}", runs=runs)


def table1_rows(scale: str = "small",
                families: Optional[List[str]] = None,
                jobs: int = 1,
                out_dir: Optional[str] = None,
                strategy: str = "monolithic") -> List[BenchRow]:
    """Run the Table I grid and return one row per (family-size, method).

    Cells the skip rule excludes still appear (as timed-out dashes) so
    the printed table keeps the paper's layout.
    """
    spec = table1_spec(scale, families, strategy)
    result = run_sweep(spec, jobs=jobs, out_dir=out_dir)
    by_id = {record["run_id"]: record for record in result.records}
    rows: List[BenchRow] = []
    for family, ((model, model_params), size_map, skip) in FAMILIES.items():
        if families and family not in families:
            continue
        for size in size_map[scale]:
            label = f"{family}{size}"
            for method, params in TABLE1_METHODS.items():
                if skip(method, size):
                    rows.append(BenchRow(label, method, 0.0, 0, 0,
                                         timed_out=True))
                    continue
                run = RunSpec(model=model, size=size,
                              config=_cell_config(method, params, strategy),
                              model_params=dict(model_params),
                              label=label)
                rows.append(BenchRow.from_record(by_id[run.run_id]))
    return rows


def format_rows(rows: List[BenchRow]) -> str:
    """Paper-style layout: one line per benchmark, methods side by side."""
    by_label: Dict[str, Dict[str, BenchRow]] = {}
    order: List[str] = []
    for row in rows:
        if row.benchmark not in by_label:
            by_label[row.benchmark] = {}
            order.append(row.benchmark)
        by_label[row.benchmark][row.method] = row
    headers = ["Benchmark"]
    for method in TABLE1_METHODS:
        headers += [f"{method} time", f"{method} max#node",
                    f"{method} hit%", f"{method} live"]
    table: List[List[str]] = []
    for label in order:
        cells: List[str] = [label]
        for method in TABLE1_METHODS:
            row = by_label[label].get(method)
            if row is None:
                cells += ["-", "-", "-", "-"]
            else:
                cells += list(row.metric_cells())
        table.append(cells)
    return format_table(headers, table)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "medium", "paper"],
                        default="small")
    parser.add_argument("--family", action="append",
                        choices=sorted(FAMILIES),
                        help="restrict to a family (repeatable)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="concurrent grid cells (process pool)")
    parser.add_argument("--out", default=None,
                        help="artifact directory (resumable)")
    args = parser.parse_args(argv)
    rows = table1_rows(args.scale, args.family, jobs=args.jobs,
                       out_dir=args.out)
    print("Table I (reproduction) — image computation: time [s], max TDD "
          "nodes, cache hit rate, post-GC/peak live nodes")
    print(format_rows(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
