"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IndexError_(ReproError):
    """An index was used inconsistently (duplicate, unknown, bad order)."""


class TDDError(ReproError):
    """A TDD operation received incompatible operands."""


class CircuitError(ReproError):
    """A circuit was constructed or used incorrectly."""


class SubspaceError(ReproError):
    """A subspace operation received invalid input."""


class SystemError_(ReproError):
    """A quantum transition system was constructed incorrectly."""


class ConfigError(ReproError):
    """An engine configuration mixed unknown or mismatched parameters."""


class SpecError(ReproError):
    """A specification string could not be parsed or resolved."""


class PartitionError(ReproError):
    """A circuit partition request could not be satisfied."""


class StoreError(ReproError):
    """The persistent result store is unusable (bad schema version,
    unwritable directory, malformed export file).  Recoverable damage —
    a truncated or bit-flipped blob, a missing index row — is *not*
    reported through this exception: it degrades to a cache miss with a
    quarantine record instead (see :mod:`repro.store`)."""
