"""Dense subspace reference implementation."""

import numpy as np
import pytest

from repro.errors import SubspaceError
from repro.sim.subspace_dense import DenseSubspace


class TestConstruction:
    def test_from_dependent_vectors(self):
        v = np.array([1, 0, 0, 0], dtype=complex)
        sub = DenseSubspace.from_vectors([v, 2 * v, v + 0j], 4)
        assert sub.dimension == 1

    def test_from_empty(self):
        assert DenseSubspace.from_vectors([], 4).dimension == 0

    def test_zero_and_full(self):
        assert DenseSubspace.zero(8).dimension == 0
        assert DenseSubspace.full(8).dimension == 8

    def test_length_mismatch(self):
        with pytest.raises(SubspaceError):
            DenseSubspace.from_vectors([np.ones(3)], 4)


class TestAlgebra:
    def test_join(self):
        e0 = np.eye(4)[:, 0]
        e1 = np.eye(4)[:, 1]
        a = DenseSubspace.from_vectors([e0], 4)
        b = DenseSubspace.from_vectors([e1], 4)
        j = a.join(b)
        assert j.dimension == 2
        assert j.contains(a) and j.contains(b)

    def test_join_overlapping(self):
        e0 = np.eye(4)[:, 0]
        mix = (np.eye(4)[:, 0] + np.eye(4)[:, 1]) / np.sqrt(2)
        a = DenseSubspace.from_vectors([e0, mix], 4)
        b = DenseSubspace.from_vectors([e0], 4)
        assert a.join(b).dimension == 2

    def test_projector_idempotent(self, rng):
        vs = [rng.normal(size=8) + 1j * rng.normal(size=8)
              for _ in range(3)]
        sub = DenseSubspace.from_vectors(vs, 8)
        p = sub.projector()
        assert np.allclose(p @ p, p, atol=1e-9)

    def test_image_under_unitary_preserves_dim(self, rng):
        from scipy.stats import unitary_group
        u = unitary_group.rvs(8, random_state=1)
        vs = [rng.normal(size=8) for _ in range(3)]
        sub = DenseSubspace.from_vectors(vs, 8)
        img = sub.image([u])
        assert img.dimension == sub.dimension

    def test_image_projector_shrinks(self):
        p0 = np.diag([1, 0]).astype(complex)
        sub = DenseSubspace.full(2)
        img = sub.image([p0])
        assert img.dimension == 1


class TestPredicates:
    def test_contains_vector(self):
        sub = DenseSubspace.from_vectors([np.eye(4)[:, 0]], 4)
        assert sub.contains_vector(np.eye(4)[:, 0] * 2.5)
        assert not sub.contains_vector(np.eye(4)[:, 1])
        assert sub.contains_vector(np.zeros(4))

    def test_equals(self):
        e0, e1 = np.eye(4)[:, 0], np.eye(4)[:, 1]
        a = DenseSubspace.from_vectors([e0, e1], 4)
        b = DenseSubspace.from_vectors([(e0 + e1), (e0 - e1)], 4)
        assert a.equals(b)
        assert not a.equals(DenseSubspace.from_vectors([e0], 4))
