"""Table II — contraction-partition (k1, k2) sweep on Grover.

Paper: k1, k2 in 1..15 on Grover 15; a broad plateau of ~1.3-2.5 s
cells with degradation only when both parameters are large (e.g.
(13, 14): 72 s).  The takeaway: the method is robust over a wide
parameter range.

Reproduction: the same sweep shape on a Grover instance scaled for
pure Python; the assertion checks the plateau property — small-k cells
must not be dramatically worse than the best cell.
"""

import pytest

from repro.systems import models


def grover():
    return models.grover_qts(7, iterations=2)


@pytest.mark.parametrize("k1", [1, 2, 4, 6])
@pytest.mark.parametrize("k2", [1, 2, 4, 6])
def test_sweep_cell(image_bench, k1, k2):
    result = image_bench(grover, "contraction", k1=k1, k2=k2)
    assert result.dimension >= 1


def test_plateau_property():
    """Small-k cells sit on a plateau: no cell with k1,k2 <= 4 may be
    an order of magnitude slower than the best of them."""
    from repro.image.engine import compute_image
    times = {}
    for k1 in (1, 2, 4):
        for k2 in (1, 2, 4):
            result = compute_image(grover(), method="contraction",
                                   k1=k1, k2=k2)
            times[(k1, k2)] = result.stats.seconds
    best = min(times.values())
    assert max(times.values()) <= max(10 * best, best + 1.0), times
