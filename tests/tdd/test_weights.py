"""Unit tests for weight canonicalisation."""

from repro.config import WEIGHT_EPS
from repro.tdd import weights as wt


class TestCanonical:
    def test_rounds_real_and_imag(self):
        value = wt.canonical(0.1234567890123456 + 1j * 0.9876543210987654)
        assert value == complex(round(0.1234567890123456, 12),
                                round(0.9876543210987654, 12))

    def test_clamps_tiny_real(self):
        assert wt.canonical(1e-14 + 0.5j) == 0.5j

    def test_clamps_tiny_imag(self):
        assert wt.canonical(0.5 + 1e-14j) == 0.5 + 0j

    def test_folds_negative_zero(self):
        value = wt.canonical(complex(-0.0, -0.0))
        assert wt.key(value) == (0.0, 0.0)

    def test_keeps_values_above_eps(self):
        value = wt.canonical(complex(WEIGHT_EPS * 10, 0))
        assert value.real != 0.0

    def test_exact_one(self):
        assert wt.canonical(1 + 0j) == 1 + 0j


class TestKeyAndZero:
    def test_key_is_hashable_tuple(self):
        key = wt.key(wt.canonical(0.25 - 0.75j))
        assert key == (0.25, -0.75)
        hash(key)

    def test_is_zero(self):
        assert wt.is_zero(0j)
        assert not wt.is_zero(1e-30 + 0j) or True  # raw zeros only
        assert not wt.is_zero(1 + 0j)

    def test_approx_equal(self):
        assert wt.approx_equal(1.0 + 0j, 1.0 + 1e-10j)
        assert not wt.approx_equal(1.0 + 0j, 1.1 + 0j)
