"""Command-line interface."""

import pytest

from repro.cli import main


class TestImage:
    def test_grover(self, capsys):
        assert main(["image", "grover", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "dim(T(S0)) = 1" in out
        assert "max #node" in out

    def test_bitflip_basic(self, capsys):
        assert main(["image", "bitflip", "--method", "basic"]) == 0
        assert "dim(T(S0)) = 1" in capsys.readouterr().out

    def test_addition_method(self, capsys):
        assert main(["image", "ghz", "--size", "5", "--method",
                     "addition", "--k", "2"]) == 0


class TestReach:
    def test_qrw(self, capsys):
        assert main(["reach", "qrw", "--size", "3", "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "converged  = True" in out

    def test_frontier_flag(self, capsys):
        assert main(["reach", "qrw", "--size", "3", "--frontier"]) == 0
        assert "frontier=True" in capsys.readouterr().out


class TestCheck:
    def test_ag_inv_holds(self, capsys):
        assert main(["check", "grover", "--size", "4",
                     "--spec", "AG inv"]) == 0
        out = capsys.readouterr().out
        assert "verdict    = holds" in out
        assert "spec       = AG inv" in out

    def test_n_alias_for_size(self, capsys):
        assert main(["check", "grover", "--n", "4",
                     "--spec", "AG inv"]) == 0

    def test_violated_spec_exits_one(self, capsys):
        assert main(["check", "grover", "--size", "3",
                     "--spec", "AG marked"]) == 1
        out = capsys.readouterr().out
        assert "violated" in out
        assert "witness" in out

    def test_same_verdict_on_dense_backend(self, capsys):
        assert main(["check", "grover", "--size", "3",
                     "--spec", "AG inv", "--backend", "dense"]) == 0
        assert "holds" in capsys.readouterr().out

    def test_all_methods_agree(self, capsys):
        for method in ("basic", "addition", "contraction", "hybrid"):
            assert main(["check", "grover", "--size", "3",
                         "--spec", "EF marked", "--method", method]) == 0

    def test_sliced_strategy(self, capsys):
        assert main(["check", "grover", "--size", "3",
                     "--spec", "AG inv", "--strategy", "sliced"]) == 0

    def test_all_drivers_agree(self, capsys):
        for driver in ("sequential", "opsharded", "frontier"):
            assert main(["check", "grover", "--size", "3",
                         "--spec", "AG inv", "--driver", driver]) == 0
        out = capsys.readouterr().out
        assert "driver=opsharded" in out   # non-default drivers echoed

    def test_driver_on_dense_backend(self, capsys):
        assert main(["check", "grover", "--size", "3", "--spec", "AG inv",
                     "--backend", "dense", "--driver", "opsharded"]) == 0

    def test_frontier_flag_with_conflicting_driver_errors(self, capsys):
        assert main(["reach", "qrw", "--size", "3", "--frontier",
                     "--driver", "opsharded"]) == 2
        assert "frontier" in capsys.readouterr().err

    def test_unknown_atom_reports_available(self, capsys):
        assert main(["check", "grover", "--size", "3",
                     "--spec", "AG nonsense"]) == 2
        err = capsys.readouterr().err
        assert "available atoms" in err
        assert "inv" in err

    def test_syntax_error_reports_position(self, capsys):
        assert main(["check", "ghz", "--size", "3",
                     "--spec", "AG (zero"]) == 2
        assert "position" in capsys.readouterr().err


class TestDirectionFlags:
    def test_check_backward_direction(self, capsys):
        assert main(["check", "grover", "--size", "3",
                     "--spec", "AG plus", "--direction", "backward"]) == 1
        out = capsys.readouterr().out
        assert "direction=backward" in out
        assert "initial directions reaching the event" in out

    def test_check_prints_witness_trace(self, capsys):
        assert main(["check", "grover", "--size", "3",
                     "--spec", "AG plus"]) == 1
        out = capsys.readouterr().out
        assert "trace      = G (1 steps, replay ok" in out

    def test_check_bounded_spec_text(self, capsys):
        assert main(["check", "qrw", "--size", "3",
                     "--spec", "AG[<=1] init"]) == 1
        out = capsys.readouterr().out
        assert "spec       = AG[<=1] init" in out

    def test_check_bound_flag(self, capsys):
        assert main(["check", "qrw", "--size", "3",
                     "--spec", "AG init", "--bound", "1"]) == 1
        assert "bound=1" in capsys.readouterr().out

    def test_reach_backward_bounded(self, capsys):
        assert main(["reach", "qrw", "--size", "3", "--direction",
                     "backward", "--bound", "2"]) == 0
        out = capsys.readouterr().out
        assert "direction=backward" in out
        assert "(2 iterations)" in out

    def test_image_backward_preimage(self, capsys):
        assert main(["image", "ghz", "--size", "3", "--method", "basic",
                     "--direction", "backward"]) == 0
        assert "dim(T~(S0))" in capsys.readouterr().out


class TestConfigValidation:
    def test_dense_with_explicit_tdd_flags_rejected(self, capsys):
        # regression: these used to be silently dropped
        assert main(["image", "ghz", "--size", "3", "--backend", "dense",
                     "--method", "basic"]) == 2
        assert "tdd-only" in capsys.readouterr().err

    def test_dense_with_explicit_jobs_rejected(self, capsys):
        assert main(["image", "ghz", "--size", "3", "--backend", "dense",
                     "--strategy", "sliced", "--jobs", "2"]) == 2
        assert "tdd-only" in capsys.readouterr().err

    def test_jobs_without_sliced_rejected(self, capsys):
        assert main(["image", "ghz", "--size", "3", "--jobs", "2"]) == 2
        assert "sliced" in capsys.readouterr().err

    def test_dense_with_default_flags_still_works(self, capsys):
        assert main(["image", "ghz", "--size", "3",
                     "--backend", "dense"]) == 0


class TestCrosscheckSpec:
    def test_spec_cross_validation(self, capsys):
        assert main(["crosscheck", "grover", "--size", "3",
                     "--spec", "AG inv"]) == 0
        out = capsys.readouterr().out
        assert "tdd       = holds" in out
        assert "dense     = holds" in out
        assert "agree     = True" in out


class TestInvariant:
    def test_grover_invariant_exit_zero(self, capsys):
        code = main(["invariant", "grover", "--size", "4",
                     "--initial", "invariant", "--strict"])
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_grover_plus_exit_one(self, capsys):
        code = main(["invariant", "grover", "--size", "4"])
        assert code == 1

    def test_qpe_model(self, capsys):
        assert main(["image", "qpe", "--size", "3",
                     "--phase", "0.625"]) == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["image", "nonsense"])


class TestStrategyFlags:
    def test_image_sliced_inline(self, capsys):
        assert main(["image", "qrw", "--size", "3",
                     "--strategy", "sliced"]) == 0
        out = capsys.readouterr().out
        assert "strategy=sliced" in out
        assert "cofactors" in out

    def test_image_sliced_jobs(self, capsys):
        assert main(["image", "ghz", "--size", "3", "--method", "basic",
                     "--strategy", "sliced", "--jobs", "2"]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_reach_sliced_matches_monolithic(self, capsys):
        assert main(["reach", "qrw", "--size", "3",
                     "--strategy", "sliced"]) == 0
        sliced_out = capsys.readouterr().out
        assert main(["reach", "qrw", "--size", "3"]) == 0
        mono_out = capsys.readouterr().out
        def dims(text):
            return [line for line in text.splitlines()
                    if line.startswith("dimensions")]
        assert dims(sliced_out) == dims(mono_out)

    def test_slice_depth_flag(self, capsys):
        assert main(["image", "qrw", "--size", "3", "--strategy",
                     "sliced", "--slice-depth", "1"]) == 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["image", "ghz", "--strategy", "nonsense"])


class TestSweepCommand:
    def test_check_axis(self, capsys, tmp_path):
        assert main(["sweep", "--models", "grover", "--sizes", "3",
                     "--methods", "basic", "--check", "AG inv",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "check[AG inv]" in out
        assert "holds" in out
        csv_text = (tmp_path / "sweep.csv").read_text()
        assert "verdict" in csv_text.splitlines()[0]
        assert "holds" in csv_text

    def test_axes_run(self, capsys, tmp_path):
        assert main(["sweep", "--models", "ghz", "--sizes", "3",
                     "--methods", "basic", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ghz3/basic/tdd/monolithic" in out
        assert (tmp_path / "sweep.json").exists()
        assert (tmp_path / "sweep.csv").exists()

    def test_spec_file_run(self, capsys, tmp_path):
        import json
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-test", "models": ["bv"], "sizes": [3],
            "methods": ["basic"]}))
        assert main(["sweep", "--spec", str(spec_path)]) == 0
        assert "bv3/basic/tdd/monolithic" in capsys.readouterr().out

    def test_missing_axes_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--models", "ghz"])  # no --sizes

    def test_sweep_errors_use_the_uniform_error_path(self, capsys):
        # the sweep fast-path must share the error contract of every
        # other subcommand: "error: ..." on stderr, exit code 2
        assert main(["sweep", "--models", "nosuch", "--sizes", "3"]) == 2
        assert "error: unknown model" in capsys.readouterr().err


class TestBenchForwarders:
    def test_smoke_strategy_forward(self, capsys):
        # the smoke wrapper forwards strategy flags to the harness
        assert main(["smoke", "--model", "ghz", "--size", "3",
                     "--strategy", "monolithic"]) == 0
        assert "strategy=monolithic" in capsys.readouterr().out


class TestStoreFlag:
    def test_check_miss_then_hit(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["check", "grover", "--size", "3", "--spec",
                     "AG inv", "--store", store]) == 0
        assert "store      = miss (recorded)" in capsys.readouterr().out
        assert main(["check", "grover", "--size", "3", "--spec",
                     "AG inv", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "store      = hit" in out
        assert "1 iterations" in out
        assert "verdict    = holds" in out

    def test_reach_miss_then_hit(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["reach", "qrw", "--size", "3", "--store",
                     store]) == 0
        assert "store      = miss (recorded)" in capsys.readouterr().out
        assert main(["reach", "qrw", "--size", "3", "--store",
                     store]) == 0
        out = capsys.readouterr().out
        assert "store      = hit (seed dim" in out
        assert "(1 iterations)" in out

    def test_bounded_reach_stays_out_of_the_store(self, capsys,
                                                  tmp_path):
        store = str(tmp_path / "store")
        assert main(["reach", "qrw", "--size", "3", "--bound", "1",
                     "--store", store]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--store", store]) == 0
        assert "entries        = 0" in capsys.readouterr().out

    def test_no_store_flag_prints_no_store_line(self, capsys):
        assert main(["reach", "qrw", "--size", "3"]) == 0
        assert "store " not in capsys.readouterr().out


class TestCacheCommand:
    def _populate(self, store):
        assert main(["check", "grover", "--size", "3", "--spec",
                     "AG inv", "--store", store]) == 0

    def test_stats_on_fresh_store(self, capsys, tmp_path):
        assert main(["cache", "stats", "--store",
                     str(tmp_path / "s")]) == 0
        out = capsys.readouterr().out
        assert "entries        = 0" in out
        assert "schema version = 1" in out

    def test_ls_and_stats_after_population(self, capsys, tmp_path):
        store = str(tmp_path / "s")
        self._populate(store)
        capsys.readouterr()
        assert main(["cache", "ls", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert "forward" in out
        assert main(["cache", "stats", "--store", store]) == 0
        assert "entries        = 1" in capsys.readouterr().out

    def test_gc_with_tiny_budget_evicts(self, capsys, tmp_path):
        store = str(tmp_path / "s")
        self._populate(store)
        capsys.readouterr()
        assert main(["cache", "gc", "--store", store, "--max-bytes",
                     "1"]) == 0
        assert "1 entries evicted" in capsys.readouterr().out
        assert main(["cache", "stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "entries        = 0" in out
        assert "evictions      = 1" in out

    def test_export_import_round_trip(self, capsys, tmp_path):
        store = str(tmp_path / "s")
        bundle = str(tmp_path / "bundle.json")
        self._populate(store)
        capsys.readouterr()
        assert main(["cache", "export", "--store", store, "--out",
                     bundle]) == 0
        assert "exported 1 entries" in capsys.readouterr().out
        other = str(tmp_path / "other")
        assert main(["cache", "import", "--store", other, "--input",
                     bundle]) == 0
        assert "imported 1 entries" in capsys.readouterr().out
        # the imported store warm-starts checks like the original
        assert main(["check", "grover", "--size", "3", "--spec",
                     "AG inv", "--store", other]) == 0
        assert "store      = hit" in capsys.readouterr().out

    def test_import_garbage_uses_uniform_error_path(self, capsys,
                                                    tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("{}")
        assert main(["cache", "import", "--store",
                     str(tmp_path / "s"), "--input", str(junk)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            main(["cache"])
