"""Garbage collection invariants of :meth:`TDDManager.collect`.

The contract: live TDD handles pin every node reachable from their
roots (all their evaluations are preserved bit-for-bit), everything
else leaves the unique table, and operation-cache entries that mention
a reclaimed node are invalidated so recycled ``id()`` values can never
resurrect a stale memo.
"""

import numpy as np

from repro.indices.index import Index
from repro.systems import models
from repro.tdd import construction as tc

from tests.helpers import fresh_manager, random_tensor

IDX = list("abcdef")


def _random_tdd(m, rng, names=IDX):
    arr = random_tensor(rng, len(names))
    return tc.from_numpy(m, arr, [Index(n) for n in names]), arr


class TestCollectPreservesLiveRoots:
    def test_live_evaluations_survive(self, rng):
        m = fresh_manager(IDX)
        kept, arr = _random_tdd(m, rng)
        m.collect()
        np.testing.assert_allclose(kept.to_numpy(), arr, atol=1e-12)

    def test_sum_of_live_roots_survives(self, rng):
        m = fresh_manager(IDX)
        x, ax = _random_tdd(m, rng)
        y, ay = _random_tdd(m, rng)
        total = x + y
        m.collect()
        np.testing.assert_allclose(total.to_numpy(), ax + ay, atol=1e-8)

    def test_canonicity_survives_collect(self, rng):
        # recomputing after a collect must re-intern onto the kept nodes
        m = fresh_manager(IDX)
        x, _ = _random_tdd(m, rng)
        y, _ = _random_tdd(m, rng)
        first = x + y
        m.collect()
        second = x + y
        assert first.same_as(second)
        assert first.root.node is second.root.node

    def test_extra_roots_pin_raw_edges(self):
        m = fresh_manager(IDX)
        edge = m.make_node(0, m.scalar_edge(1), m.scalar_edge(2))
        # no TDD handle wraps `edge`; without pinning it would be swept
        m.collect(extra_roots=[edge])
        assert m.live_nodes == 1
        m.collect()
        assert m.live_nodes == 0


class TestCollectReclaims:
    def test_unreachable_nodes_are_freed(self, rng):
        m = fresh_manager(IDX)
        kept, _ = _random_tdd(m, rng)
        kept_size = kept.size()
        garbage, _ = _random_tdd(m, rng)
        assert m.live_nodes > kept_size - 1
        del garbage
        reclaimed = m.collect()
        assert reclaimed > 0
        # size() counts the terminal; the unique table does not
        assert m.live_nodes == kept_size - 1

    def test_everything_freed_without_roots(self, rng):
        m = fresh_manager(IDX)
        tdd, _ = _random_tdd(m, rng)
        del tdd
        m.collect()
        assert m.live_nodes == 0

    def test_counters(self, rng):
        m = fresh_manager(IDX)
        tdd, _ = _random_tdd(m, rng)
        peak = m.peak_live_nodes
        assert peak >= m.live_nodes > 0
        runs_before = m.gc_runs
        del tdd
        m.collect()
        assert m.gc_runs == runs_before + 1
        assert m.nodes_reclaimed >= peak - m.live_nodes - 1
        # peak is a high-water mark: collection must not lower it
        assert m.peak_live_nodes == peak


class TestCacheInvalidation:
    def test_recompute_after_collect_is_correct(self, rng):
        m = fresh_manager(IDX)
        x, ax = _random_tdd(m, rng)
        y, ay = _random_tdd(m, rng)
        result = x + y
        del result
        m.collect()  # drops the sum's nodes; memo entries must go too
        again = x + y
        np.testing.assert_allclose(again.to_numpy(), ax + ay, atol=1e-8)

    def test_dead_entries_are_purged(self, rng):
        m = fresh_manager(IDX)
        x, _ = _random_tdd(m, rng)
        y, _ = _random_tdd(m, rng)
        result = x + y
        populated = len(m.add_cache)
        assert populated > 0
        del result
        m.collect()
        assert len(m.add_cache) < populated

    def test_live_entries_survive_collect(self, rng):
        m = fresh_manager(IDX)
        x, _ = _random_tdd(m, rng)
        y, _ = _random_tdd(m, rng)
        result = x + y
        m.collect()  # result still live: its memo entries may stay
        hits_before = m.add_cache.hits
        again = x + y
        assert again.same_as(result)
        assert m.add_cache.hits > hits_before


class TestGCInPipelines:
    def test_reachability_dimensions_unchanged_by_gc(self):
        qts_gc = models.qrw_qts(3, 0.2)
        from repro.mc.reachability import reachable_space
        with_gc = reachable_space(qts_gc, "contraction", gc=True)
        qts_plain = models.qrw_qts(3, 0.2)
        without_gc = reachable_space(qts_plain, "contraction", gc=False)
        assert with_gc.dimensions == without_gc.dimensions
        assert with_gc.stats.gc_runs > 0
        assert without_gc.stats.gc_runs == 0

    def test_compute_image_reports_post_gc_live_nodes(self):
        from repro.image.engine import compute_image
        for method, params in (("basic", {}), ("addition", {"k": 1}),
                               ("contraction", {"k1": 2, "k2": 2}),
                               ("hybrid", {"k": 1, "k1": 2, "k2": 2})):
            qts = models.ghz_qts(4)
            result = compute_image(qts, method=method, **params)
            stats = result.stats
            assert stats.cache_hits + stats.cache_misses > 0
            assert stats.gc_runs == 1
            assert 0 < stats.live_nodes <= stats.peak_live_nodes
            data = stats.as_dict()
            for field in ("cache_hits", "cache_misses", "cache_hit_rate",
                          "peak_live_nodes", "live_nodes"):
                assert field in data
