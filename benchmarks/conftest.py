"""Benchmark helpers: run one image computation per measured round."""

from __future__ import annotations

import pytest

from repro.image.engine import compute_image


@pytest.fixture
def image_bench(benchmark):
    """Benchmark ``compute_image`` on a freshly built QTS per round.

    Records the paper's second Table I column (peak TDD node count) in
    ``benchmark.extra_info`` so a single run reports both columns.
    """

    def run(builder, method, rounds: int = 1, **params):
        results = {}

        def target():
            qts = builder()
            results["last"] = compute_image(qts, method=method, **params)
            return results["last"]

        benchmark.pedantic(target, rounds=rounds, iterations=1)
        result = results["last"]
        benchmark.extra_info["max_nodes"] = result.stats.max_nodes
        benchmark.extra_info["dimension"] = result.dimension
        benchmark.extra_info["method"] = method
        return result

    return run
