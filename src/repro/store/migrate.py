"""Schema versioning and one-shot migrations for the result store.

The index carries its schema version in a ``meta`` table; opening a
store whose version is *older* than :data:`SCHEMA_VERSION` runs the
registered migrations one by one (each is a one-shot, idempotent DDL /
backfill step inside a single transaction), and opening one that is
*newer* refuses loudly — a downgraded binary must never scribble over
an index it does not understand.

Version history:

* **0** — the pre-versioning layout: an ``entries`` table without the
  ``checksum`` column, no ``meta`` and no ``quarantine`` table.
* **1** — current: ``meta`` (schema version, lifetime counters),
  ``checksum`` column on ``entries`` (blob integrity digest, lazily
  backfilled for migrated v0 rows on their first verified read) and
  the ``quarantine`` audit table.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, Dict

from repro.errors import StoreError

#: the schema this build of the package reads and writes
SCHEMA_VERSION = 1


def _table_exists(conn: sqlite3.Connection, name: str) -> bool:
    row = conn.execute(
        "SELECT 1 FROM sqlite_master WHERE type='table' AND name=?",
        (name,)).fetchone()
    return row is not None


def _column_exists(conn: sqlite3.Connection, table: str,
                   column: str) -> bool:
    return any(info[1] == column
               for info in conn.execute(f"PRAGMA table_info({table})"))


def _migrate_v0_to_v1(conn: sqlite3.Connection) -> None:
    """v0 -> v1: add the integrity and audit machinery.

    The ``checksum`` backfill is deliberately *lazy*: the column is
    added empty here, and :meth:`ResultStore.lookup` adopts a digest
    the first time a v0 blob is read and decodes successfully.  An
    eager backfill would have to read every blob at open time — the
    exact full-table scan a migration of a large store must avoid.
    """
    if not _column_exists(conn, "entries", "checksum"):
        conn.execute("ALTER TABLE entries "
                     "ADD COLUMN checksum TEXT NOT NULL DEFAULT ''")
    conn.execute("""
        CREATE TABLE IF NOT EXISTS quarantine (
            at REAL NOT NULL,
            key TEXT NOT NULL,
            reason TEXT NOT NULL,
            detail TEXT NOT NULL DEFAULT '',
            moved_to TEXT NOT NULL DEFAULT ''
        )""")


#: version -> the one-shot migration taking the index to version + 1
MIGRATIONS: Dict[int, Callable[[sqlite3.Connection], None]] = {
    0: _migrate_v0_to_v1,
}


def _create_current(conn: sqlite3.Connection) -> None:
    """The full version-:data:`SCHEMA_VERSION` DDL (fresh index)."""
    conn.execute("""
        CREATE TABLE IF NOT EXISTS entries (
            key TEXT PRIMARY KEY,
            system TEXT NOT NULL,
            initial TEXT NOT NULL,
            direction TEXT NOT NULL,
            bound INTEGER NOT NULL,
            checksum TEXT NOT NULL DEFAULT '',
            num_qubits INTEGER NOT NULL,
            dimension INTEGER NOT NULL,
            iterations INTEGER NOT NULL,
            bytes INTEGER NOT NULL,
            created REAL NOT NULL,
            last_hit REAL NOT NULL,
            hits INTEGER NOT NULL DEFAULT 0
        )""")
    conn.execute("""
        CREATE TABLE IF NOT EXISTS quarantine (
            at REAL NOT NULL,
            key TEXT NOT NULL,
            reason TEXT NOT NULL,
            detail TEXT NOT NULL DEFAULT '',
            moved_to TEXT NOT NULL DEFAULT ''
        )""")


def ensure_schema(conn: sqlite3.Connection) -> int:
    """Create or upgrade the index schema; returns the final version.

    Runs in one ``BEGIN IMMEDIATE`` transaction so two processes
    opening the same fresh or legacy store race safely: the loser
    blocks on the write lock, then finds the schema already current.
    """
    conn.execute("BEGIN IMMEDIATE")
    try:
        legacy_entries = (_table_exists(conn, "entries")
                          and not _table_exists(conn, "meta"))
        conn.execute("CREATE TABLE IF NOT EXISTS meta "
                     "(key TEXT PRIMARY KEY, value TEXT NOT NULL)")
        row = conn.execute("SELECT value FROM meta "
                           "WHERE key='schema_version'").fetchone()
        if row is not None:
            version = int(row[0])
        elif legacy_entries:
            version = 0  # pre-versioning index: entries but no meta
        else:
            version = SCHEMA_VERSION
            _create_current(conn)
        if version > SCHEMA_VERSION:
            raise StoreError(
                f"result store schema version {version} is newer than "
                f"this build understands ({SCHEMA_VERSION}); refusing "
                f"to touch it — upgrade the package or use a fresh "
                f"--store directory")
        while version < SCHEMA_VERSION:
            MIGRATIONS[version](conn)
            version += 1
        conn.execute("INSERT OR REPLACE INTO meta VALUES "
                     "('schema_version', ?)", (str(version),))
        conn.execute("COMMIT")
    except BaseException:
        conn.execute("ROLLBACK")
        raise
    return version
