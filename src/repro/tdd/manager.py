"""The TDD manager: unique table, normalisation, caches and GC.

Every TDD computation happens inside one :class:`TDDManager`.  The
manager owns

* the global :class:`~repro.indices.order.IndexOrder` the diagrams are
  canonical against,
* the *unique table* interning nodes (structural equality becomes
  object identity),
* the instrumented :class:`~repro.tdd.cache.OperationCache` memo tables
  for addition and contraction (hit/miss counters, optional bounded
  size),
* a weak registry of live :class:`~repro.tdd.tdd.TDD` handles that
  drives root-based mark-and-sweep garbage collection
  (:meth:`collect`), and
* counters used by the benchmark harness (current/peak live nodes,
  total nodes made, nodes reclaimed).

The kernel is fully iterative (see :mod:`repro.tdd.apply`), so the
manager never touches the interpreter recursion limit.

Normalisation rule (DESIGN.md Section 3): when a node is created, its two
outgoing edge weights are divided by the weight of largest magnitude
(ties resolved toward the low edge), which becomes the weight of the
incoming edge.  Together with interning this makes the representation
canonical for a fixed index order.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.indices.index import Index
from repro.indices.order import IndexOrder
from repro.tdd import weights as wt
from repro.tdd import xp as _xp
from repro.tdd.cache import OperationCache
from repro.tdd.node import Edge, Node, TERMINAL_LEVEL


class WeightTable:
    """Interned canonical weight vectors: the managed array behind
    batched edges.

    Child-edge weight vectors of batched nodes are canonicalised and
    interned here; the unique table keys nodes on the returned integer
    *weight id* instead of hashing the vector again, and every edge
    with the same canonical vector shares one read-only array row.
    Scalar weights (``parallel_shape == ()``) bypass the table — they
    are their own key.
    """

    __slots__ = ("_ids", "_rows")

    def __init__(self) -> None:
        self._ids: Dict[tuple, int] = {}
        self._rows: List[np.ndarray] = []

    def intern(self, values) -> int:
        """The stable id of the canonical vector ``values``."""
        key = wt.key_array(values)
        wid = self._ids.get(key)
        if wid is None:
            row = np.asarray(values, dtype=_xp.COMPLEX_DTYPE)
            row.setflags(write=False)
            wid = len(self._rows)
            self._rows.append(row)
            self._ids[key] = wid
        return wid

    def array(self, wid: int) -> np.ndarray:
        """The (read-only) vector stored under ``wid``."""
        return self._rows[wid]

    def __len__(self) -> int:
        return len(self._rows)

    def clear(self) -> None:
        self._ids.clear()
        self._rows.clear()


def _add_cache_ids(key: tuple, value: Edge) -> Tuple[int, int, int]:
    # key = ((re, im, id_a), (re, im, id_b))
    return (key[0][2], key[1][2], id(value.node))


def _cont_cache_ids(key: tuple, value: Edge) -> Tuple[int, int, int]:
    # key = (id_a, id_b, sum_levels)
    return (key[0], key[1], id(value.node))


class TDDManager:
    """Owner of all nodes, caches and the index order for a family of TDDs.

    ``cache_size`` bounds each operation cache (FIFO eviction); ``None``
    means unbounded, the right default for one-shot computations.  Long
    reachability runs combine a bound with periodic :meth:`collect`
    calls to keep the working set flat.
    """

    def __init__(self, order: Optional[IndexOrder] = None,
                 cache_size: Optional[int] = None) -> None:
        self.order = order if order is not None else IndexOrder()
        self.terminal = Node(TERMINAL_LEVEL, None, None)
        self._unique: Dict[tuple, Node] = {}
        self.add_cache = OperationCache("add", max_size=cache_size,
                                        key_ids=_add_cache_ids)
        self.cont_cache = OperationCache("cont", max_size=cache_size,
                                         key_ids=_cont_cache_ids)
        #: interned canonical weight vectors of batched child edges
        self.weights = WeightTable()
        #: live TDD handles; their roots pin nodes during :meth:`collect`
        self._handles: "weakref.WeakSet" = weakref.WeakSet()
        #: total number of distinct non-terminal nodes ever interned
        self.nodes_made: int = 0
        #: high-water mark of the unique table size
        self.peak_live_nodes: int = 0
        #: number of :meth:`collect` runs / nodes they reclaimed
        self.gc_runs: int = 0
        self.nodes_reclaimed: int = 0

    # ------------------------------------------------------------------
    # index registration
    # ------------------------------------------------------------------
    def register(self, index: Index) -> int:
        """Register ``index`` in the manager's order; return its level."""
        return self.order.register(index)

    def register_all(self, indices: Iterable[Index]) -> None:
        self.order.register_all(indices)

    def level(self, index: Index) -> int:
        return self.order.level(index)

    # ------------------------------------------------------------------
    # edges and nodes
    # ------------------------------------------------------------------
    def zero_edge(self) -> Edge:
        return Edge(0j, self.terminal)

    def scalar_edge(self, value: complex) -> Edge:
        value = complex(value)
        if value == 0:
            return self.zero_edge()
        return Edge(value, self.terminal)

    def make_edge(self, weight: complex, node: Node) -> Edge:
        """Build an edge (exact-zero weight ⇒ the zero edge).

        Outer weights are kept at full precision: clamping or rounding
        here would be scale-dependent and destroy small amplitudes
        (e.g. 2^-n/2 root weights of wide superpositions).  Rounding
        happens only on the normalised child weights in
        :meth:`make_node`.
        """
        if wt.parallel_shape(weight):
            array = _xp.asarray(weight)
            if not array.any():
                return self.zero_edge()
            return Edge(array, node)
        if weight == 0:
            return self.zero_edge()
        return Edge(complex(weight), node)

    def make_node(self, level: int, low: Edge, high: Edge) -> Edge:
        """Intern a node branching on ``level``; returns a normalised edge.

        Applies the two TDD reduction rules: a node whose outgoing edges
        are identical is redundant (return the common edge), and edge
        weights are normalised by the largest-magnitude weight.  The
        normalised (relative) child weights are rounded to the canonical
        grid; children negligible *relative to their sibling* are
        clamped to zero, which is what keeps float cancellation noise
        out of the diagrams.

        Batched edges (vector weights) take the same rules elementwise
        per parallel slot in :meth:`_make_batched_node`; the scalar path
        below is untouched and stays bit-identical to the pre-batching
        kernel.
        """
        if wt.parallel_shape(low.weight) or wt.parallel_shape(high.weight):
            return self._make_batched_node(level, low, high)
        w0 = complex(low.weight)
        w1 = complex(high.weight)
        if w0 == 0 and w1 == 0:
            return self.zero_edge()
        if w0 == w1 and low.node is high.node:
            return Edge(w0, low.node)
        # normalisation: divide by the larger-magnitude weight (tie: low)
        if abs(w0) >= abs(w1):
            norm = w0
        else:
            norm = w1
        nw0 = wt.canonical(w0 / norm)
        nw1 = wt.canonical(w1 / norm)
        n0 = low.node if not wt.is_zero(nw0) else self.terminal
        n1 = high.node if not wt.is_zero(nw1) else self.terminal
        key = (level, wt.key(nw0), id(n0), wt.key(nw1), id(n1))
        node = self._unique.get(key)
        if node is None:
            node = Node(level, Edge(nw0, n0), Edge(nw1, n1))
            self._unique[key] = node
            self.nodes_made += 1
            if len(self._unique) > self.peak_live_nodes:
                self.peak_live_nodes = len(self._unique)
        return Edge(norm, node)

    def _make_batched_node(self, level: int, low: Edge, high: Edge) -> Edge:
        """Batched :meth:`make_node`: the scalar rules, per parallel slot.

        Both child weights are broadcast to one common parallel shape,
        each slot is normalised by its own larger-magnitude weight (tie
        toward low, exactly the scalar rule), and the canonical child
        vectors are interned in the :class:`WeightTable` so the unique
        key hashes two small integers instead of two arrays.  Slots
        where both children vanish normalise to 0/0 → guarded to 0.
        """
        ns = _xp.xp
        w0 = _xp.asarray(low.weight)
        w1 = _xp.asarray(high.weight)
        if w0.shape != w1.shape:
            w0, w1 = ns.broadcast_arrays(w0, w1)
        if not (w0.any() or w1.any()):
            return self.zero_edge()
        if low.node is high.node and bool((w0 == w1).all()):
            return Edge(+w0, low.node)
        # elementwise normalisation: each slot divides by its own
        # larger-magnitude weight, ties resolved toward the low edge
        norm = ns.where(ns.abs(w0) >= ns.abs(w1), w0, w1)
        safe = ns.where(norm == 0, 1.0, norm)
        nw0 = wt.canonical_array(w0 / safe)
        nw1 = wt.canonical_array(w1 / safe)
        if not nw0.any():
            n0, k0, low_child = self.terminal, (0.0, 0.0), self.zero_edge()
        else:
            wid0 = self.weights.intern(nw0)
            n0, k0 = low.node, ("w", wid0)
            low_child = Edge(self.weights.array(wid0), low.node)
        if not nw1.any():
            n1, k1, high_child = self.terminal, (0.0, 0.0), self.zero_edge()
        else:
            wid1 = self.weights.intern(nw1)
            n1, k1 = high.node, ("w", wid1)
            high_child = Edge(self.weights.array(wid1), high.node)
        key = (level, k0, id(n0), k1, id(n1))
        node = self._unique.get(key)
        if node is None:
            node = Node(level, low_child, high_child)
            self._unique[key] = node
            self.nodes_made += 1
            if len(self._unique) > self.peak_live_nodes:
                self.peak_live_nodes = len(self._unique)
        return Edge(norm, node)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def live_nodes(self) -> int:
        """Number of distinct non-terminal nodes currently interned."""
        return len(self._unique)

    def clear_caches(self) -> None:
        """Drop the operation memo tables (keeps interned nodes)."""
        self.add_cache.clear()
        self.cont_cache.clear()

    def cache_counters(self) -> Dict[str, int]:
        """Cache counters, combined and per table, for instrumentation.

        The per-table ``add_*``/``cont_*`` counters feed the
        ``add_hit_rate``/``cont_hit_rate`` columns of the sweep CSV:
        addition and contraction caches behave very differently under
        batching, and a combined rate hides which one is earning its
        memory.
        """
        return {
            "hits": self.add_cache.hits + self.cont_cache.hits,
            "misses": self.add_cache.misses + self.cont_cache.misses,
            "evictions": (self.add_cache.evictions
                          + self.cont_cache.evictions),
            "add_hits": self.add_cache.hits,
            "add_misses": self.add_cache.misses,
            "cont_hits": self.cont_cache.hits,
            "cont_misses": self.cont_cache.misses,
            "gc_runs": self.gc_runs,
            "nodes_reclaimed": self.nodes_reclaimed,
        }

    def reset(self) -> None:
        """Drop all nodes and caches.  Outstanding TDDs become invalid."""
        self._unique.clear()
        self.clear_caches()
        self.weights.clear()
        self.nodes_made = 0
        self.peak_live_nodes = 0

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def _register_handle(self, handle) -> None:
        """Called by :class:`~repro.tdd.tdd.TDD` on construction."""
        self._handles.add(handle)

    def live_roots(self) -> list:
        """Root edges of every TDD handle still alive in Python."""
        return [handle.root for handle in self._handles]

    def collect(self, extra_roots: Iterable[Edge] = ()) -> int:
        """Root-based mark-and-sweep; returns the number of nodes freed.

        Every live :class:`~repro.tdd.tdd.TDD` handle (tracked weakly)
        pins the nodes reachable from its root; ``extra_roots`` pins
        additional raw edges.  Everything else leaves the unique table,
        and cache entries mentioning a reclaimed node are invalidated
        (a freed node's ``id`` may be recycled, so stale entries would
        be unsound, not just wasteful).

        Only call between operations: an apply in flight holds
        intermediate edges the registry cannot see, and sweeping those
        would break interning canonicity mid-computation.
        """
        marked = {id(self.terminal)}
        stack = []
        for root in self.live_roots():
            if not root.is_zero:
                stack.append(root.node)
        for root in extra_roots:
            if not root.is_zero:
                stack.append(root.node)
        while stack:
            node = stack.pop()
            if id(node) in marked:
                continue
            marked.add(id(node))
            if node.is_terminal:
                continue
            for child in (node.low, node.high):
                if not child.is_zero and id(child.node) not in marked:
                    stack.append(child.node)
        before = len(self._unique)
        self._unique = {key: node for key, node in self._unique.items()
                        if id(node) in marked}
        reclaimed = before - len(self._unique)
        self.add_cache.purge(marked)
        self.cont_cache.purge(marked)
        self.gc_runs += 1
        self.nodes_reclaimed += reclaimed
        return reclaimed

    # ------------------------------------------------------------------
    # operations (thin wrappers; implementations live in sibling modules)
    # ------------------------------------------------------------------
    def add(self, a: Edge, b: Edge) -> Edge:
        from repro.tdd.arithmetic import add_edges
        return add_edges(self, a, b)

    def contract(self, a: Edge, b: Edge, sum_levels: Tuple[int, ...]) -> Edge:
        from repro.tdd.contraction import contract_edges
        return contract_edges(self, a, b, sum_levels)

    def __repr__(self) -> str:
        return (f"TDDManager(indices={len(self.order)}, "
                f"live_nodes={self.live_nodes})")
