"""Table I — QFT rows (scaled).

Paper: QFT15 basic 34.64 s / 65536 nodes; addition halves the nodes;
contraction 0.08 s / 63 nodes, then scales to QFT100 at 7.14 s / 101
nodes with *linear* max-node growth.

Reproduction: the same exponential-vs-linear split at 10/16/20 qubits.
"""

import pytest

from repro.systems import models


@pytest.mark.parametrize("method,params", [
    ("basic", {}),
    ("addition", {"k": 1}),
    ("contraction", {"k1": 4, "k2": 4}),
])
def test_qft10(image_bench, method, params):
    result = image_bench(lambda: models.qft_qts(10), method, **params)
    assert result.dimension == 1


@pytest.mark.parametrize("n", [16, 20])
def test_qft_wide_contraction_only(image_bench, n):
    result = image_bench(lambda: models.qft_qts(n), "contraction",
                         k1=4, k2=4)
    assert result.dimension == 1
    # the paper's headline: max nodes grow linearly, ~n
    assert result.stats.max_nodes <= 8 * n


def test_qft_exponential_vs_linear():
    from repro.image.engine import compute_image
    basic = compute_image(models.qft_qts(10), method="basic")
    contraction = compute_image(models.qft_qts(10), method="contraction",
                                k1=4, k2=4)
    assert basic.stats.max_nodes >= 2 ** 10 - 1
    assert contraction.stats.max_nodes < 100
