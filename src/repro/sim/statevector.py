"""Dense statevector simulation.

States are ndarrays of shape ``(2,) * n`` (axis *i* = qubit *i*,
big-endian in all flat views).  Gates apply through their full
``operator_matrix`` on the touched qubits, so projectors and scaled
Kraus gates work exactly like unitaries (the norm simply drops).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.gates.gate import Gate
from repro.utils.bitops import int_to_bits


def basis_state_vector(num_qubits: int, bits: Sequence[int]) -> np.ndarray:
    """|bits> as a ``(2,)*n`` array."""
    if len(bits) != num_qubits:
        raise ValueError("bits length must equal qubit count")
    state = np.zeros((2,) * num_qubits, dtype=complex)
    state[tuple(bits)] = 1.0
    return state


def basis_state_from_int(num_qubits: int, value: int) -> np.ndarray:
    return basis_state_vector(num_qubits, int_to_bits(value, num_qubits))


def uniform_state(num_qubits: int) -> np.ndarray:
    """|+...+> — the uniform superposition."""
    state = np.full((2,) * num_qubits, 2 ** (-num_qubits / 2), dtype=complex)
    return state


def apply_gate(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply ``gate`` to a state (or batch: extra trailing axes allowed)."""
    qubits = gate.qubits
    if not qubits:  # global scalar
        return state * complex(gate.matrix[0, 0])
    k = len(qubits)
    op = gate.operator_matrix().reshape((2,) * (2 * k))
    # Contract op's input axes (the second half) with the state's qubit
    # axes, then move the freshly produced output axes back into place.
    moved = np.tensordot(op, state, axes=(range(k, 2 * k), qubits))
    # ``moved`` has the k output axes first, then the remaining axes in
    # original relative order with the contracted ones removed.
    rest = [ax for ax in range(state.ndim) if ax not in qubits]
    inverse = list(qubits) + rest
    perm = [0] * state.ndim
    for pos, ax in enumerate(inverse):
        perm[ax] = pos
    return np.transpose(moved, perm)


def run_circuit(circuit: QuantumCircuit, state: np.ndarray) -> np.ndarray:
    """Apply every gate of ``circuit`` in order."""
    for gate in circuit.gates:
        state = apply_gate(state, gate, circuit.num_qubits)
    return state


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """The full ``2^n x 2^n`` operator matrix of a circuit.

    Despite the name this also works for non-unitary circuits (it is
    simply the product of the gates' operator matrices); it is the
    Kraus-operator matrix of a one-operator quantum operation.
    """
    n = circuit.num_qubits
    dim = 2 ** n
    # Batch-apply to all basis states at once: axes 0..n-1 are the state,
    # the trailing axis indexes the input basis vector.
    batch = np.eye(dim, dtype=complex).reshape((2,) * n + (dim,))
    out = batch
    for gate in circuit.gates:
        out = apply_gate(out, gate, n)
    return out.reshape(dim, dim)


def state_to_vector(state: np.ndarray) -> np.ndarray:
    """Flatten a ``(2,)*n`` state to a length ``2^n`` vector."""
    return state.reshape(-1)
