"""Quantum gates: matrices, the :class:`Gate` value type and builders."""

from repro.gates.gate import Gate
from repro.gates import library
from repro.gates import matrices

__all__ = ["Gate", "library", "matrices"]
