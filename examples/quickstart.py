"""Quickstart: model-check a Grover iteration.

Reproduces the paper's Section III.A.1 case study end to end:

1. build the 3-qubit Grover-iteration quantum transition system,
2. compute the image of the invariant subspace S = span{|++->, |11->}
   with all four algorithms (basic / addition / contraction / hybrid),
3. verify the invariance property T(S) = S,
4. print the Fig. 1 projector TDD as Graphviz DOT.

See examples/parallel_sweep.py for the parallel sliced execution
strategy and the batch sweep runner.

Run:  python examples/quickstart.py
"""

from repro import ModelChecker, compute_image, models
from repro.tdd.io import to_dot


def main() -> None:
    # --- the quantum transition system (paper, Definition 2) --------
    qts = models.grover_qts(3, initial="invariant")
    print(f"System: {qts}")
    print(f"Initial subspace dimension: {qts.initial.dimension}")

    # --- one-step images with all four algorithms --------------------
    for method, params in (("basic", {}),
                           ("addition", {"k": 1}),
                           ("contraction", {"k1": 4, "k2": 4}),
                           ("hybrid", {"k": 1, "k1": 4, "k2": 4})):
        result = compute_image(models.grover_qts(3, initial="invariant"),
                               method=method, **params)
        print(f"  {method:12s} dim(T(S)) = {result.dimension}   "
              f"time = {result.stats.seconds * 1000:.1f} ms   "
              f"max TDD nodes = {result.stats.max_nodes}")

    # --- the invariance property T(S) = S ----------------------------
    checker = ModelChecker(qts, method="contraction", k1=4, k2=4)
    invariant = checker.check_invariant(strict=True)
    print(f"T(S) = S (Grover invariant, Section III.A.1): {invariant}")
    assert invariant

    # --- the Fig. 1 projector TDD ------------------------------------
    dot = to_dot(qts.initial.projector, name="fig1_projector")
    print("\nProjector TDD of span{|++->, |11->} (paper Fig. 1), "
          "Graphviz DOT:")
    print(dot)


if __name__ == "__main__":
    main()
