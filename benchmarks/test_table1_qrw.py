"""Table I — quantum random walk rows (noisy coin, Section III.A.3).

Paper: QRW20 basic 341 s / 265614 nodes, addition 218 s / 107714,
contraction 14.31 s / 404 — and only contraction reaches QRW100.

Reproduction: 4-step noisy walks; expect the same method ordering and
flat contraction node counts as the walk widens.
"""

import pytest

from repro.systems import models


def qrw(n, steps=4):
    return models.qrw_qts(n, 0.1, steps=steps)


@pytest.mark.parametrize("method,params", [
    ("basic", {}),
    ("addition", {"k": 1}),
    ("contraction", {"k1": 4, "k2": 4}),
])
def test_qrw6(image_bench, method, params):
    result = image_bench(lambda: qrw(6), method, **params)
    assert result.dimension >= 1


@pytest.mark.parametrize("n", [8, 10])
def test_qrw_wide_contraction(image_bench, n):
    result = image_bench(lambda: qrw(n), "contraction", k1=4, k2=4)
    assert result.dimension >= 1


def test_qrw_contraction_fastest():
    from repro.image.engine import compute_image
    basic = compute_image(qrw(8, steps=6), method="basic")
    contraction = compute_image(qrw(8, steps=6), method="contraction",
                                k1=4, k2=4)
    assert contraction.stats.seconds <= basic.stats.seconds * 1.5
    assert contraction.stats.max_nodes <= basic.stats.max_nodes
