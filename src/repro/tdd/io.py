"""TDD serialisation and visualisation helpers.

``to_dot`` renders diagrams in the style of the paper's Fig. 1: one
oval per node labelled with its index, solid (blue, value 0) and dashed
(red, value 1) edges annotated with non-unit weights, and edges with
weight 0 omitted.

``to_dict`` / ``from_dict`` are the JSON-serialisable diagram codec.
Besides debugging, they are the *inter-process transport* of the sliced
image strategy (:mod:`repro.image.sliced`): a :class:`TDDManager` holds
process-local object identity (the unique table interns by ``id``) and
cannot be pickled across workers, so cofactor sub-TDDs travel as dicts
and are re-interned on arrival.  :func:`order_payload` /
:func:`manager_from_order` ship the global index order the same way —
every worker must intern against the *same* level order or the rebuilt
diagrams would not be comparable.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence, Tuple

import numpy as _np

from repro.indices.index import Index
from repro.tdd import xp as _xp
from repro.indices.order import IndexOrder
from repro.tdd.manager import TDDManager
from repro.tdd.node import Edge, Node
from repro.tdd.tdd import TDD

OrderPayload = List[Tuple[str, object, object]]


def order_payload(order: IndexOrder) -> OrderPayload:
    """The index order as a picklable list of ``(name, qubit, time)``.

    Entries are in level order, so registering them one by one into a
    fresh order reproduces the exact level assignment.
    """
    return [(idx.name, idx.qubit, idx.time)
            for idx in (order.index_at(level)
                        for level in range(len(order)))]


def restore_order(payload: Sequence[Tuple[str, object, object]]
                  ) -> IndexOrder:
    """Rebuild an :class:`IndexOrder` from :func:`order_payload` output."""
    return IndexOrder(Index(name, qubit=qubit, time=time)
                      for name, qubit, time in payload)


def manager_from_order(payload: Sequence[Tuple[str, object, object]]
                       ) -> TDDManager:
    """A fresh manager whose level order matches the serialised one.

    This is the worker-side half of the IPC hand-off: the parent sends
    ``order_payload(manager.order)`` once (pool initialiser), workers
    build their manager from it, and every subsequent
    :func:`from_dict` call re-interns nodes against compatible levels.
    """
    return TDDManager(restore_order(payload))


def canonical_json(payload) -> str:
    """The canonical JSON text of a codec payload.

    Sorted keys and compact separators, so the same payload always
    serialises to the same bytes — the property both the content
    fingerprints (:func:`repro.mc.reachability.subspace_fingerprint`)
    and the result-store blob checksums (:mod:`repro.store`) rely on.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload) -> str:
    """sha256 hex digest of :func:`canonical_json` of ``payload``.

    Used as the content address / integrity checksum of serialised
    diagrams: a single flipped bit in a stored blob changes the digest,
    so the store can distinguish "decodes to the wrong thing" from
    "decodes at all" (JSON often survives a bit flip syntactically).
    """
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _encode_weight(value) -> object:
    """Weight → JSON: ``[re, im]`` scalars, ``{"re": …, "im": …}`` vectors.

    The scalar form is unchanged from the pre-batching codec, so
    payloads produced by older workers still decode.
    """
    if type(value) is complex:
        return [value.real, value.imag]
    array = _np.asarray(value)
    return {"re": array.real.tolist(), "im": array.imag.tolist()}


def _decode_weight(data):
    if isinstance(data, dict):
        return _xp.asarray(_np.asarray(data["re"])
                           + 1j * _np.asarray(data["im"]))
    return complex(data[0], data[1])


def _is_unit_weight(value) -> bool:
    return type(value) is complex and value == 1


def _format_weight(value) -> str:
    if not isinstance(value, complex):
        inner = ", ".join(_format_weight(complex(v))
                          for v in _np.asarray(value).ravel()[:4])
        more = ", …" if _np.asarray(value).size > 4 else ""
        return f"[{inner}{more}]"
    if value.imag == 0:
        real = value.real
        if real == int(real):
            return str(int(real))
        return f"{real:.4g}"
    if value.real == 0:
        return f"{value.imag:.4g}j"
    return f"{value.real:.4g}{value.imag:+.4g}j"


def to_dot(tdd: TDD, name: str = "tdd") -> str:
    """Graphviz DOT source for a TDD."""
    manager = tdd.manager
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    ids: Dict[int, str] = {}
    counter = [0]

    def node_id(node: Node) -> str:
        key = id(node)
        if key not in ids:
            ids[key] = f"n{counter[0]}"
            counter[0] += 1
        return ids[key]

    emitted = set()

    def emit(start: Node) -> None:
        # Explicit action stack reproducing the recursive emission
        # order (child subtree fully emitted before the edge line into
        # it), so node numbering is unchanged and depth is heap-bound.
        # An "edge" action formats at pop time — the child's "visit"
        # was pushed above it, so its id is assigned by then.
        stack = [("visit", start)]
        while stack:
            action, payload = stack.pop()
            if action == "edge":
                nid, edge, style, colour = payload
                attrs = [f"style={style}", f"color={colour}"]
                if not _is_unit_weight(edge.weight):
                    attrs.append(f'label="{_format_weight(edge.weight)}"')
                lines.append(f"  {nid} -> {node_id(edge.node)} "
                             f"[{', '.join(attrs)}];")
                continue
            node = payload
            key = id(node)
            if key in emitted:
                continue
            emitted.add(key)
            nid = node_id(node)
            if node.is_terminal:
                lines.append(f'  {nid} [shape=box, label="1"];')
                continue
            label = manager.order.index_at(node.level).name
            lines.append(f'  {nid} [shape=oval, label="{label}"];')
            pending = []
            for edge, style, colour in ((node.low, "solid", "blue"),
                                        (node.high, "dashed", "red")):
                if edge.is_zero:
                    continue
                pending.append(("visit", edge.node))
                pending.append(("edge", (nid, edge, style, colour)))
            stack.extend(reversed(pending))
        return

    root = tdd.root
    lines.append('  root [shape=none, label=""];')
    if not root.is_zero:
        emit(root.node)
        attrs = []
        if not _is_unit_weight(root.weight):
            attrs.append(f'label="{_format_weight(root.weight)}"')
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  root -> {node_id(root.node)}{attr_text};")
    lines.append("}")
    return "\n".join(lines)


def to_dict(tdd: TDD) -> dict:
    """A JSON-serialisable description of the diagram (for debugging)."""
    manager = tdd.manager
    nodes: List[dict] = []
    ids: Dict[int, int] = {}

    def visit(start: Node) -> int:
        # Action stack mirroring the recursive id-assignment order
        # (preorder, low subtree before high); "fill" actions run after
        # the child's "visit", when its id is in ``ids``.
        stack = [("visit", start)]
        while stack:
            action, payload = stack.pop()
            if action == "fill":
                entry, tag, edge = payload
                entry[tag] = {"weight": _encode_weight(edge.weight),
                              "node": ids[id(edge.node)]}
                continue
            node = payload
            key = id(node)
            if key in ids:
                continue
            my_id = len(nodes)
            ids[key] = my_id
            if node.is_terminal:
                nodes.append({"id": my_id, "terminal": True})
                continue
            entry = {"id": my_id,
                     "index": manager.order.index_at(node.level).name}
            nodes.append(entry)
            pending = []
            for tag, edge in (("low", node.low), ("high", node.high)):
                if edge.is_zero:
                    entry[tag] = None
                else:
                    pending.append(("visit", edge.node))
                    pending.append(("fill", (entry, tag, edge)))
            stack.extend(reversed(pending))
        return ids[id(start)]

    root: Edge = tdd.root
    out = {"indices": list(tdd.index_names),
           "root_weight": _encode_weight(root.weight)}
    out["root_node"] = None if root.is_zero else visit(root.node)
    out["nodes"] = nodes
    return out


def from_dict(manager, data: dict) -> TDD:
    """Rebuild a TDD from :func:`to_dict` output.

    Indices must already be registered in ``manager`` (or registrable
    by name); the reconstruction re-interns every node, so the result
    is canonical in the target manager even across processes.
    """
    from repro.indices.index import Index

    indices = [Index(name) for name in data["indices"]]
    for idx in indices:
        manager.register(idx)
    by_id = {entry["id"]: entry for entry in data["nodes"]}
    cache: Dict[int, "Edge"] = {}

    def build(start_id: int) -> Edge:
        # iterative postorder: children rebuilt before their parent
        stack = [("enter", start_id)]
        while stack:
            action, node_id = stack.pop()
            if node_id in cache and action == "enter":
                continue
            entry = by_id[node_id]
            if entry.get("terminal"):
                cache[node_id] = Edge(1 + 0j, manager.terminal)
                continue
            if action == "enter":
                stack.append(("exit", node_id))
                for tag in ("low", "high"):
                    sub = entry.get(tag)
                    if sub is not None and sub["node"] not in cache:
                        stack.append(("enter", sub["node"]))
                continue

            def child(tag: str) -> Edge:
                sub = entry.get(tag)
                if sub is None:
                    return manager.zero_edge()
                inner = cache[sub["node"]]
                weight = _decode_weight(sub["weight"])
                return manager.make_edge(weight * inner.weight, inner.node)

            cache[node_id] = manager.make_node(
                manager.level(Index(entry["index"])),
                child("low"), child("high"))
        return cache[start_id]

    from repro.tdd import weights as _wt
    weight = _decode_weight(data["root_weight"])
    if data["root_node"] is None or _wt.any_is_zero(weight):
        root = manager.zero_edge()
    else:
        inner = build(data["root_node"])
        root = manager.make_edge(weight * inner.weight, inner.node)
    return TDD(manager, root, indices)
