"""Partial trace of subspace projectors.

For a dynamic circuit such as the bit-flip corrector, the property of
interest often concerns only the *data* qubits; the syndrome register
is scratch.  ``reduced_density`` traces a projector TDD (viewed as an
unnormalised density operator) down to a subset of qubits, entirely
with TDD operations: tracing qubit *q* sums the two diagonal slices
``P[x_q = b, y_q = b]``.

The reduced operator is Hermitian PSD but generally *not* a projector,
so the subspace of interest is its support.  ``reduced_support`` uses
the dense eigen-decomposition for that last step (exponential in the
number of *kept* qubits only — the traced register can be wide).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SubspaceError
from repro.sim.subspace_dense import DenseSubspace
from repro.subspace.subspace import Subspace
from repro.tdd.tdd import TDD


def reduced_density(subspace: Subspace,
                    keep_qubits: Sequence[int]) -> TDD:
    """Trace the projector over all qubits not in ``keep_qubits``.

    Returns the reduced (unnormalised) density tensor over the kept
    kets/bras.
    """
    space = subspace.space
    keep = sorted(set(keep_qubits))
    for q in keep:
        if not 0 <= q < space.num_qubits:
            raise SubspaceError(f"qubit {q} out of range")
    traced = [q for q in range(space.num_qubits) if q not in keep]
    rho = subspace.projector
    for q in traced:
        ket, bra = space.kets[q], space.bras[q]
        rho = (rho.slice({ket: 0, bra: 0})
               + rho.slice({ket: 1, bra: 1}))
    return rho


def reduced_density_matrix(subspace: Subspace,
                           keep_qubits: Sequence[int]) -> np.ndarray:
    """The reduced density operator as a dense matrix (kept qubits)."""
    space = subspace.space
    keep = sorted(set(keep_qubits))
    rho = reduced_density(subspace, keep)
    k = len(keep)
    tensor = rho.to_numpy()
    order = list(rho.indices)
    bra_axes = [order.index(space.bras[q]) for q in keep]
    ket_axes = [order.index(space.kets[q]) for q in keep]
    matrix = np.transpose(tensor, bra_axes + ket_axes)
    return matrix.reshape(2 ** k, 2 ** k)


def reduced_support(subspace: Subspace, keep_qubits: Sequence[int],
                    tol: float = 1e-9) -> DenseSubspace:
    """Support of the reduced density operator, as a dense subspace.

    This is ``supp(tr_rest(P))`` — the smallest subspace of the kept
    register certain to contain the restriction of every state in the
    original subspace.
    """
    matrix = reduced_density_matrix(subspace, keep_qubits)
    values, vectors = np.linalg.eigh(matrix)
    keep_cols = values > tol * max(1.0, float(values.max(initial=0.0)))
    return DenseSubspace(vectors[:, keep_cols], matrix.shape[0])
