"""The :class:`Subspace` type and its ambient :class:`StateSpace`.

``StateSpace`` fixes the naming convention DESIGN.md describes: states
live on the *ket* indices ``x_i^0`` and projectors pair each ket with a
*bra* index ``y_i^0`` that sorts immediately after it (the interleaved
``x1 y1 x2 y2 ...`` order of the paper's Fig. 1).

``Subspace`` keeps an orthonormal basis of TDD states *and* the
projector TDD, maintained incrementally by the Gram-Schmidt procedure
of Section IV.B.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.config import GS_EPS
from repro.errors import SubspaceError
from repro.indices.index import Index, wire
from repro.tdd import construction as tc
from repro.tdd.manager import TDDManager
from repro.tdd.tdd import TDD


class StateSpace:
    """The ambient n-qubit space with its canonical ket/bra indices."""

    def __init__(self, manager: TDDManager, num_qubits: int) -> None:
        self.manager = manager
        self.num_qubits = num_qubits
        self.kets = [wire(q, 0) for q in range(num_qubits)]
        self.bras = [Index(f"y{q}_0", qubit=q, time=0)
                     for q in range(num_qubits)]

    # ------------------------------------------------------------------
    def ket_of(self, qubit: int) -> Index:
        return self.kets[qubit]

    def bra_of(self, qubit: int) -> Index:
        return self.bras[qubit]

    def bra_map(self) -> dict:
        """ket -> bra renaming map."""
        return dict(zip(self.kets, self.bras))

    # ------------------------------------------------------------------
    # state constructors
    # ------------------------------------------------------------------
    def basis_state(self, bits: Sequence[int]) -> TDD:
        return tc.basis_state(self.manager, self.kets, bits)

    def product_state(self, single_qubit_vectors: Sequence[np.ndarray]
                      ) -> TDD:
        """Tensor product of per-qubit 2-vectors (|+>, |->, ...)."""
        if len(single_qubit_vectors) != self.num_qubits:
            raise SubspaceError("need one 2-vector per qubit")
        state = tc.scalar(self.manager, 1)
        for qubit, vec in enumerate(single_qubit_vectors):
            vec = np.asarray(vec, dtype=complex).reshape(2)
            part = tc.from_numpy(self.manager, vec, [self.kets[qubit]])
            state = state.product(part)
        return state

    def from_amplitudes(self, amplitudes: np.ndarray) -> TDD:
        """A dense state vector (length 2^n) as a TDD over the kets."""
        arr = np.asarray(amplitudes, dtype=complex).reshape(
            (2,) * self.num_qubits)
        return tc.from_numpy(self.manager, arr, self.kets)

    def to_bra(self, state: TDD) -> TDD:
        """The bra of a ket state: conjugate + ket->bra renaming."""
        return state.conj().rename(self.bra_map())

    # ------------------------------------------------------------------
    def zero_subspace(self) -> "Subspace":
        return Subspace(self)

    def span(self, states: Iterable[TDD]) -> "Subspace":
        """The span of arbitrary TDD states over the kets."""
        out = Subspace(self)
        for state in states:
            out.add_state(state)
        return out

    def __repr__(self) -> str:
        return f"StateSpace(qubits={self.num_qubits})"


class Subspace:
    """A subspace as an orthonormal TDD basis plus its projector TDD."""

    def __init__(self, space: StateSpace) -> None:
        self.space = space
        self.basis: List[TDD] = []
        #: Projector tensor P[bra, ket]; starts as the zero tensor.
        self.projector: TDD = tc.zero(
            space.manager, list(space.bras) + list(space.kets))

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return len(self.basis)

    @property
    def manager(self) -> TDDManager:
        return self.space.manager

    def is_zero(self) -> bool:
        return not self.basis

    # ------------------------------------------------------------------
    def project_state(self, state: TDD) -> TDD:
        """``P |state>``: contract the projector with a ket state."""
        result = self.projector.contract(state, self.space.kets)
        # the result lives on the bras; bring it home to the kets
        return result.rename(dict(zip(self.space.bras, self.space.kets)))

    def add_state(self, state: TDD, tol: float = GS_EPS) -> Optional[TDD]:
        """One Gram-Schmidt step (paper, Section IV.B).

        Subtracts the projection of ``state`` onto the subspace; if a
        non-negligible residual remains it is normalised, appended to
        the basis, and the projector is updated.  Returns the new basis
        vector, or ``None`` when the state was already contained.
        """
        if set(state.indices) - set(self.space.kets):
            raise SubspaceError("state must live on the ket indices")
        residual = state - self.project_state(state)
        norm = residual.norm()
        if norm <= tol:
            return None
        vector = residual.scaled(1.0 / norm)
        self.basis.append(vector)
        self.projector = self.projector + vector.rename(
            dict(zip(self.space.kets, self.space.bras))).product(
                vector.conj())
        return vector

    # ------------------------------------------------------------------
    def join(self, other: "Subspace") -> "Subspace":
        """``self v other`` — the closed span of the union."""
        if other.space is not self.space:
            raise SubspaceError("subspaces live in different state spaces")
        out = self.copy()
        for state in other.basis:
            out.add_state(state)
        return out

    def copy(self) -> "Subspace":
        out = Subspace(self.space)
        out.basis = list(self.basis)
        out.projector = self.projector
        return out

    # ------------------------------------------------------------------
    def contains_state(self, state: TDD, tol: float = 1e-7) -> bool:
        norm = state.norm()
        if norm <= tol:
            return True
        residual = state - self.project_state(state)
        return residual.norm() <= tol * norm

    def contains(self, other: "Subspace", tol: float = 1e-7) -> bool:
        return all(self.contains_state(v, tol) for v in other.basis)

    def equals(self, other: "Subspace", tol: float = 1e-7) -> bool:
        return (self.dimension == other.dimension
                and self.contains(other, tol))

    # ------------------------------------------------------------------
    # quantum-logic operations (Birkhoff-von Neumann lattice)
    # ------------------------------------------------------------------
    def complement(self) -> "Subspace":
        """The orthocomplement ``S^perp``.

        Computed by basis-decomposing ``I - P`` (a projector whenever
        ``P`` is one).  Note the result's dimension is ``2^n - dim``,
        so this is only cheap on small systems or near-full subspaces.
        """
        from repro.subspace.projector import basis_decompose
        from repro.tdd import construction as tc
        identity = tc.identity(self.manager, list(self.space.bras),
                               list(self.space.kets))
        return basis_decompose(self.space, identity - self.projector)

    def meet(self, other: "Subspace") -> "Subspace":
        """``S1 ^ S2`` — the lattice meet (subspace intersection).

        Uses De Morgan in the subspace lattice:
        ``S1 ^ S2 = (S1^perp v S2^perp)^perp``.
        """
        if other.space is not self.space:
            raise SubspaceError("subspaces live in different state spaces")
        return self.complement().join(other.complement()).complement()

    def overlap(self, other: "Subspace") -> float:
        """``tr(P1 P2)`` — 0 iff the subspaces are orthogonal.

        For Hermitian projectors ``tr(P1 P2)`` equals the
        Hilbert-Schmidt inner product of the projector tensors.
        """
        if other.space is not self.space:
            raise SubspaceError("subspaces live in different state spaces")
        if self.is_zero() or other.is_zero():
            return 0.0
        value = self.projector.inner(other.projector)
        return float(value.real)

    def is_orthogonal_to(self, other: "Subspace",
                         tol: float = 1e-9) -> bool:
        return self.overlap(other) <= tol

    # ------------------------------------------------------------------
    def to_dense(self) -> "np.ndarray":
        """The projector as a dense 2^n x 2^n matrix (tests only)."""
        n = self.space.num_qubits
        tensor = self.projector.to_numpy()
        # axes are interleaved (bra0? ket0? per qubit) following level
        # order: x_q before y_q by name; to_numpy sorts by level.
        order = self.projector.indices
        bra_axes = [order.index(b) for b in self.space.bras]
        ket_axes = [order.index(k) for k in self.space.kets]
        perm = bra_axes + ket_axes
        matrix = np.transpose(tensor, perm).reshape(2 ** n, 2 ** n)
        return matrix

    def max_basis_nodes(self) -> int:
        """The largest TDD size over basis vectors and the projector."""
        sizes = [v.size() for v in self.basis]
        sizes.append(self.projector.size())
        return max(sizes)

    def __repr__(self) -> str:
        return (f"Subspace(dim={self.dimension}, "
                f"qubits={self.space.num_qubits})")
