"""Shared image-computation plumbing."""

import pytest

from repro.image.base import input_sum_indices, rename_outputs_to_kets
from repro.indices.index import wire
from repro.systems import models


class TestInputSumIndices:
    def test_all_advanced(self):
        inputs = [wire(0, 0), wire(1, 0)]
        outputs = [wire(0, 3), wire(1, 2)]
        assert input_sum_indices(inputs, outputs) == inputs

    def test_fused_wire_excluded(self):
        inputs = [wire(0, 0), wire(1, 0)]
        outputs = [wire(0, 3), wire(1, 0)]  # qubit 1 diagonal-only
        assert input_sum_indices(inputs, outputs) == [wire(0, 0)]

    def test_identity_circuit(self):
        inputs = [wire(0, 0)]
        assert input_sum_indices(inputs, inputs) == []


class TestRenameOutputs:
    def test_renames_advanced_wires(self):
        qts = models.ghz_qts(3)
        circuit = qts.operations[0].kraus_circuits[0]
        wirings, inputs, outputs = circuit.wirings()
        from repro.tdd import construction as tc
        state = tc.basis_state(qts.manager, outputs, [0, 1, 1])
        renamed = rename_outputs_to_kets(qts.space, state, outputs)
        assert set(renamed.indices) == set(qts.space.kets)

    def test_noop_for_identity_outputs(self):
        qts = models.ghz_qts(2)
        state = qts.space.basis_state([0, 1])
        renamed = rename_outputs_to_kets(qts.space, state, qts.space.kets)
        assert renamed is state


class TestImageComputerContract:
    def test_base_class_abstract(self):
        from repro.image.base import ImageComputerBase
        computer = ImageComputerBase(models.ghz_qts(2))
        with pytest.raises(NotImplementedError):
            computer.image()

    def test_result_dimension_property(self):
        from repro.image.engine import compute_image
        result = compute_image(models.ghz_qts(3), method="basic")
        assert result.dimension == result.subspace.dimension
