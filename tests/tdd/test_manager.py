"""Unit tests for the TDD manager: interning, normalisation, reduction."""

import pytest

from repro.errors import IndexError_
from repro.indices.index import Index
from repro.tdd.manager import TDDManager
from repro.tdd.node import TERMINAL_LEVEL

from tests.helpers import fresh_manager


class TestEdges:
    def test_zero_edge_points_at_terminal(self):
        m = TDDManager()
        edge = m.zero_edge()
        assert edge.is_zero
        assert edge.node is m.terminal

    def test_make_edge_zero_weight_collapses(self):
        m = fresh_manager(["a"])
        inner = m.make_node(0, m.scalar_edge(1), m.scalar_edge(2))
        edge = m.make_edge(0, inner.node)
        assert edge.node is m.terminal

    def test_scalar_edge_keeps_tiny_weights(self):
        # outer weights must NOT be clamped (2^-50 amplitudes are real)
        m = TDDManager()
        edge = m.scalar_edge(2.0 ** -50)
        assert not edge.is_zero


class TestMakeNode:
    def test_redundant_node_reduced(self):
        m = fresh_manager(["a"])
        child = m.scalar_edge(0.5)
        edge = m.make_node(0, child, m.make_edge(child.weight, child.node))
        assert edge.node is m.terminal
        assert edge.weight == 0.5

    def test_both_zero_children(self):
        m = fresh_manager(["a"])
        edge = m.make_node(0, m.zero_edge(), m.zero_edge())
        assert edge.is_zero

    def test_normalisation_by_larger_magnitude(self):
        m = fresh_manager(["a"])
        edge = m.make_node(0, m.scalar_edge(0.5), m.scalar_edge(-1.0))
        assert edge.weight == -1.0
        assert edge.node.low.weight == -0.5
        assert edge.node.high.weight == 1.0

    def test_normalisation_tie_prefers_low(self):
        m = fresh_manager(["a"])
        edge = m.make_node(0, m.scalar_edge(1.0), m.scalar_edge(-1.0))
        assert edge.weight == 1.0
        assert edge.node.low.weight == 1.0
        assert edge.node.high.weight == -1.0

    def test_interning_same_node(self):
        m = fresh_manager(["a"])
        e1 = m.make_node(0, m.scalar_edge(1), m.scalar_edge(2))
        e2 = m.make_node(0, m.scalar_edge(2), m.scalar_edge(4))
        assert e1.node is e2.node
        assert e2.weight == 2 * e1.weight

    def test_distinct_levels_distinct_nodes(self):
        m = fresh_manager(["a", "b"])
        e1 = m.make_node(0, m.scalar_edge(1), m.zero_edge())
        e2 = m.make_node(1, m.scalar_edge(1), m.zero_edge())
        assert e1.node is not e2.node

    def test_nodes_made_counter(self):
        m = fresh_manager(["a"])
        before = m.nodes_made
        m.make_node(0, m.scalar_edge(1), m.scalar_edge(3))
        m.make_node(0, m.scalar_edge(2), m.scalar_edge(6))  # same interned
        assert m.nodes_made == before + 1


class TestRegistration:
    def test_register_returns_level(self):
        m = TDDManager()
        assert m.register(Index("a")) == 0
        assert m.register(Index("b")) == 1
        assert m.register(Index("a")) == 0  # idempotent

    def test_unknown_index_raises(self):
        m = TDDManager()
        with pytest.raises(IndexError_):
            m.level(Index("missing"))

    def test_terminal_level_is_max(self):
        m = TDDManager()
        assert m.terminal.level == TERMINAL_LEVEL
        assert m.terminal.is_terminal


class TestBookkeeping:
    def test_live_nodes_and_reset(self):
        m = fresh_manager(["a", "b"])
        m.make_node(0, m.scalar_edge(1), m.scalar_edge(2))
        assert m.live_nodes == 1
        m.reset()
        assert m.live_nodes == 0
        assert m.nodes_made == 0

    def test_clear_caches_keeps_nodes(self):
        m = fresh_manager(["a"])
        e = m.make_node(0, m.scalar_edge(1), m.scalar_edge(2))
        m.add(e, e)
        m.clear_caches()
        assert m.live_nodes >= 1
