"""TDD contraction vs numpy einsum."""

import numpy as np
import pytest

from repro.errors import TDDError
from repro.indices.index import Index
from repro.tdd import construction as tc

from tests.helpers import fresh_manager, random_tensor

NAMES = [f"a{i}" for i in range(5)]


@pytest.fixture
def manager():
    return fresh_manager(NAMES)


def idx(*names):
    return [Index(n) for n in names]


class TestMatrixSemantics:
    def test_matrix_product(self, manager, rng):
        a = random_tensor(rng, 2)
        b = random_tensor(rng, 2)
        ta = tc.from_numpy(manager, a, idx("a0", "a1"))
        tb = tc.from_numpy(manager, b, idx("a1", "a2"))
        result = ta.contract(tb, idx("a1"))
        assert np.allclose(result.to_numpy(), a @ b)

    def test_inner_product_full_contraction(self, manager, rng):
        a = random_tensor(rng, 3)
        b = random_tensor(rng, 3)
        ta = tc.from_numpy(manager, a, idx("a0", "a1", "a2"))
        tb = tc.from_numpy(manager, b, idx("a0", "a1", "a2"))
        result = ta.contract(tb, idx("a0", "a1", "a2"))
        assert result.is_scalar
        assert np.isclose(result.scalar_value(), np.sum(a * b))

    def test_outer_product_disjoint(self, manager, rng):
        a = random_tensor(rng, 2)
        b = random_tensor(rng, 1)
        ta = tc.from_numpy(manager, a, idx("a0", "a1"))
        tb = tc.from_numpy(manager, b, idx("a3"))
        result = ta.product(tb)
        assert np.allclose(result.to_numpy(),
                           np.einsum("ab,c->abc", a, b))

    def test_shared_index_not_summed_stays_free(self, manager, rng):
        # elementwise alignment on a shared, non-summed index
        a = random_tensor(rng, 2)
        b = random_tensor(rng, 2)
        ta = tc.from_numpy(manager, a, idx("a0", "a1"))
        tb = tc.from_numpy(manager, b, idx("a1", "a2"))
        result = ta.contract(tb, ())
        assert np.allclose(result.to_numpy(),
                           np.einsum("ab,bc->abc", a, b))

    def test_phantom_sum_index_gives_factor_two(self, manager, rng):
        a = random_tensor(rng, 1)
        b = random_tensor(rng, 1)
        ta = tc.from_numpy(manager, a, idx("a0"))
        tb = tc.from_numpy(manager, b, idx("a0"))
        # a4 is a free index of neither operand -> declared via ones
        ones = tc.ones(manager, idx("a4"))
        result = ta.product(ones).contract(tb, idx("a0", "a4"))
        assert np.isclose(result.scalar_value(), 2 * np.sum(a * b))

    def test_three_way_chain(self, manager, rng):
        a, b, c = (random_tensor(rng, 2) for _ in range(3))
        ta = tc.from_numpy(manager, a, idx("a0", "a1"))
        tb = tc.from_numpy(manager, b, idx("a1", "a2"))
        tcd = tc.from_numpy(manager, c, idx("a2", "a3"))
        result = ta.contract(tb, idx("a1")).contract(tcd, idx("a2"))
        assert np.allclose(result.to_numpy(), a @ b @ c)


class TestEdgeCases:
    def test_zero_operand(self, manager, rng):
        a = random_tensor(rng, 2)
        ta = tc.from_numpy(manager, a, idx("a0", "a1"))
        zero = tc.zero(manager, idx("a1", "a2"))
        assert ta.contract(zero, idx("a1")).is_zero

    def test_scalar_times_tensor(self, manager, rng):
        a = random_tensor(rng, 2)
        ta = tc.from_numpy(manager, a, idx("a0", "a1"))
        half = tc.scalar(manager, 0.5)
        assert np.allclose(ta.product(half).to_numpy(), 0.5 * a)

    def test_sum_over_unknown_index_raises(self, manager, rng):
        ta = tc.from_numpy(manager, random_tensor(rng, 1), idx("a0"))
        tb = tc.from_numpy(manager, random_tensor(rng, 1), idx("a1"))
        with pytest.raises(TDDError):
            ta.contract(tb, idx("a4"))

    def test_bilinearity(self, manager, rng):
        a, b, c = (random_tensor(rng, 2) for _ in range(3))
        ta = tc.from_numpy(manager, a, idx("a0", "a1"))
        tb = tc.from_numpy(manager, b, idx("a1", "a2"))
        tcd = tc.from_numpy(manager, c, idx("a1", "a2"))
        left = ta.contract(tb + tcd, idx("a1"))
        right = ta.contract(tb, idx("a1")) + ta.contract(tcd, idx("a1"))
        assert left.allclose(right)

    def test_contraction_commutative(self, manager, rng):
        a = random_tensor(rng, 2)
        b = random_tensor(rng, 2)
        ta = tc.from_numpy(manager, a, idx("a0", "a1"))
        tb = tc.from_numpy(manager, b, idx("a1", "a2"))
        assert ta.contract(tb, idx("a1")).allclose(
            tb.contract(ta, idx("a1")))
