"""Image computation for quantum transition systems (paper, Sections IV-V).

Four interchangeable algorithms (the *method* axis):

* :class:`~repro.image.basic.BasicImageComputer` — Algorithm 1:
  contract each Kraus circuit into one monolithic operator TDD, apply
  it to every basis state, join the results.
* :class:`~repro.image.addition.AdditionImageComputer` — Section V.A:
  slice the k highest-degree internal indices of the circuit's index
  graph and sum the per-slice contributions.
* :class:`~repro.image.contraction.ContractionImageComputer` — Section
  V.B: cut the circuit into blocks of at most k1 qubits and at most k2
  crossing multi-qubit gates per column, contract each block into a
  small TDD, and contract the state through the block network.
* :class:`~repro.image.hybrid.HybridImageComputer` — addition slicing
  over contraction-partitioned blocks (extension beyond the paper).

Orthogonal to the method, the execution *strategy*
(:mod:`repro.image.sliced`) decides how the underlying contractions
run: ``monolithic`` (sequential) or ``sliced`` (parallel cofactor
decomposition over a process pool).

Use :func:`~repro.image.engine.compute_image` for a one-shot entry
point, or :class:`~repro.image.engine.ImageEngine` to hold the method
computer and strategy pool across calls.
"""

from repro.image.base import ImageResult
from repro.image.basic import BasicImageComputer
from repro.image.addition import AdditionImageComputer
from repro.image.contraction import ContractionImageComputer
from repro.image.hybrid import HybridImageComputer
from repro.image.engine import (ImageEngine, ImageTask, compute_image,
                                make_computer, METHODS)
from repro.image.sliced import (MonolithicExecutor, SlicedExecutor,
                                STRATEGIES, make_executor)

__all__ = [
    "ImageResult", "BasicImageComputer", "AdditionImageComputer",
    "ContractionImageComputer", "HybridImageComputer",
    "ImageEngine", "ImageTask", "compute_image", "make_computer",
    "METHODS",
    "MonolithicExecutor", "SlicedExecutor", "STRATEGIES", "make_executor",
]
