"""Utility modules: timing, stats, bit helpers, table formatting."""

import time

import pytest

from repro.utils.bitops import bits_to_int, gray_code, int_to_bits
from repro.utils.stats import StatsRecorder
from repro.utils.tables import format_table
from repro.utils.timing import Stopwatch


class TestBitops:
    def test_round_trip(self):
        for value in (0, 1, 6, 255):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_big_endian(self):
        assert int_to_bits(6, 4) == [0, 1, 1, 0]

    def test_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_bad_bit(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2])

    def test_gray_code_adjacent_differ_by_one_bit(self):
        code = gray_code(4)
        assert len(set(code)) == 16
        for a, b in zip(code, code[1:]):
            assert bin(a ^ b).count("1") == 1


class TestStopwatch:
    def test_measures_time(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.005

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0


class TestStatsRecorder:
    def test_observe_nodes(self):
        stats = StatsRecorder()
        stats.observe_nodes(5)
        stats.observe_nodes(3)
        assert stats.max_nodes == 5

    def test_merge(self):
        a = StatsRecorder(max_nodes=3, contractions=1)
        b = StatsRecorder(max_nodes=7, contractions=2)
        a.merge(b)
        assert a.max_nodes == 7
        assert a.contractions == 3

    def test_as_dict(self):
        stats = StatsRecorder(max_nodes=4)
        stats.extra["blocks"] = 6
        data = stats.as_dict()
        assert data["max_nodes"] == 4
        assert data["blocks"] == 6


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "b"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_float_formatting(self):
        text = format_table(["t"], [[1.23456]])
        assert "1.23" in text
