"""Contraction-order heuristics for tensor networks.

The contraction-partition image computation contracts a network made of
the state tensor plus one small TDD per circuit block.  The order in
which blocks are folded in determines the peak intermediate rank; two
simple policies are provided:

* :func:`sequential_order` — fold in list order (blocks are generated
  column-by-column, so this follows circuit time; it is the order the
  paper's description implies).
* :func:`greedy_order` — repeatedly fold the tensor that minimises the
  resulting accumulator rank; a classic cheap heuristic.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Set

from repro.indices.index import Index


def sequential_order(tensors: Sequence[object],
                     open_indices: Set[Index]) -> List[int]:
    """The identity order."""
    return list(range(len(tensors)))


def greedy_order(tensors: Sequence[object],
                 open_indices: Set[Index]) -> List[int]:
    """Greedy min-resulting-rank fold order.

    Simulates the fold symbolically on index sets only: starting from
    tensor 0, repeatedly pick the unused tensor whose fold yields the
    smallest accumulator index set (preferring tensors that share
    indices with the accumulator).
    """
    if not tensors:
        return []
    counts: Counter = Counter()
    for tensor in tensors:
        for idx in tensor.indices:
            counts[idx] += 1

    used = [False] * len(tensors)
    order = [0]
    used[0] = True
    acc: Set[Index] = set(tensors[0].indices)
    remaining_counts = counts.copy()

    for _ in range(len(tensors) - 1):
        best = None
        best_key = None
        for pos, tensor in enumerate(tensors):
            if used[pos]:
                continue
            t_idx = set(tensor.indices)
            shared = acc & t_idx
            summable = {idx for idx in shared
                        if idx not in open_indices
                        and remaining_counts[idx] == 2}
            result_rank = len(acc | t_idx) - len(summable)
            connected = 1 if shared else 0
            key = (-connected, result_rank, pos)
            if best_key is None or key < best_key:
                best_key = key
                best = pos
        assert best is not None
        order.append(best)
        used[best] = True
        t_idx = set(tensors[best].indices)
        shared = acc & t_idx
        summable = {idx for idx in shared
                    if idx not in open_indices
                    and remaining_counts[idx] == 2}
        for idx in shared:
            remaining_counts[idx] -= 1
        acc = (acc | t_idx) - summable
    return order
